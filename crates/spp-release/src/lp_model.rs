//! Lemma 3.3 — the configuration LP.
//!
//! Variables `x_{q,j}` = height allocated to configuration `q` during
//! phase `j` (phase `j` is the window `[t_j, t_{j+1})`; the final phase
//! `R` is unbounded). The LP is
//!
//! ```text
//! min Σ_q x_{q,R}
//! s.t. Σ_q x_{q,j} ≤ t_{j+1} − t_j                       (packing, j < R)
//!      Σ_{j≥k} Σ_q a_{iq}·x_{q,j} ≥ Σ_{j≥k} b_{ij}      (covering, ∀ k, i)
//!      x ≥ 0
//! ```
//!
//! where `a_{iq}` counts width class `i` in configuration `q` and
//! `b_{ij}` is the total height of class-`i` rectangles released at `t_j`.
//! `OPT_f = t_R + (LP optimum)`, and a basic optimum uses at most
//! `(W+1)(R+1)` distinct configuration occurrences — the quantity
//! Lemma 3.4 charges for integralization.

use crate::config::Config;
use spp_core::Instance;
use spp_lp::{Cmp, Problem, Solution, Status};

/// Static data extracted from a (rounded, grouped) instance.
#[derive(Debug, Clone)]
pub struct LpData {
    /// Phase boundaries `t_0 = 0 < t_1 < … < t_R` (release levels, with 0
    /// prepended when no item is released at 0). Empty for an empty
    /// instance.
    pub boundaries: Vec<f64>,
    /// Width classes, ascending.
    pub widths: Vec<f64>,
    /// `demand[j][i]` — total height of class-`i` items released at `t_j`.
    pub demand: Vec<Vec<f64>>,
}

impl LpData {
    /// Build from an instance whose widths all belong to `widths`
    /// (`class_of[id]` gives the class index).
    pub fn new(inst: &Instance, widths: &[f64], class_of: &[usize]) -> LpData {
        assert_eq!(inst.len(), class_of.len());
        if inst.is_empty() {
            return LpData {
                boundaries: Vec::new(),
                widths: widths.to_vec(),
                demand: Vec::new(),
            };
        }
        let mut boundaries = crate::rounding::release_levels(inst);
        if boundaries.first().is_none_or(|&b| b > spp_core::eps::EPS) {
            boundaries.insert(0, 0.0);
        }
        let mut demand = vec![vec![0.0; widths.len()]; boundaries.len()];
        for it in inst.items() {
            let j = boundaries
                .iter()
                .position(|&t| (t - it.release).abs() <= spp_core::eps::EPS)
                .expect("release must be a boundary");
            demand[j][class_of[it.id]] += it.h;
        }
        LpData {
            boundaries,
            widths: widths.to_vec(),
            demand,
        }
    }

    /// Number of phases minus one (`R`); boundaries are `t_0..t_R`.
    pub fn r(&self) -> usize {
        self.boundaries.len().saturating_sub(1)
    }

    /// Suffix demand `Σ_{j≥k} b_{ij}` for covering row `(k, i)`.
    pub fn suffix_demand(&self, k: usize, i: usize) -> f64 {
        (k..self.demand.len()).map(|j| self.demand[j][i]).sum()
    }
}

/// A solved fractional packing.
#[derive(Debug, Clone)]
pub struct FractionalSolution {
    /// `(configuration, phase, height)` with positive height, phase-sorted.
    pub entries: Vec<(Config, usize, f64)>,
    /// LP objective (height beyond `t_R`).
    pub lp_objective: f64,
    /// `OPT_f = t_R + lp_objective` — total fractional packing height.
    pub total_height: f64,
    /// Dual of each packing row (`y ≤ 0`), indexed by phase `j < R`.
    pub packing_duals: Vec<f64>,
    /// Dual of each covering row (`y ≥ 0`), indexed `[k][i]`.
    pub covering_duals: Vec<Vec<f64>>,
    /// Simplex iterations of the final master solve.
    pub iterations: usize,
}

impl FractionalSolution {
    /// Number of distinct configuration occurrences (the `k` of
    /// Lemma 3.4).
    pub fn occurrences(&self) -> usize {
        self.entries.len()
    }
}

/// Build and solve the LP over an explicit configuration set.
///
/// Returns `None` if the LP is infeasible, which cannot happen for a
/// configuration set containing every single-class configuration
/// (phase `R` is uncapacitated).
pub fn solve_with_configs(data: &LpData, configs: &[Config]) -> Option<FractionalSolution> {
    if data.boundaries.is_empty() {
        return Some(FractionalSolution {
            entries: Vec::new(),
            lp_objective: 0.0,
            total_height: 0.0,
            packing_duals: Vec::new(),
            covering_duals: Vec::new(),
            iterations: 0,
        });
    }
    let r = data.r();
    let n_w = data.widths.len();
    let n_phases = r + 1;

    let mut p = Problem::new();
    // variable layout: var(qi, j) = qi * n_phases + j
    for _q in configs {
        for j in 0..n_phases {
            let cost = if j == r { 1.0 } else { 0.0 };
            p.add_var(cost);
        }
    }
    let var = |qi: usize, j: usize| qi * n_phases + j;

    // packing rows, j = 0..r-1 (row index = j)
    for j in 0..r {
        let coeffs: Vec<(usize, f64)> = (0..configs.len()).map(|qi| (var(qi, j), 1.0)).collect();
        p.add_constraint(
            &coeffs,
            Cmp::Le,
            data.boundaries[j + 1] - data.boundaries[j],
        );
    }
    // covering rows, (k, i) with row index r + k * n_w + i
    let counts: Vec<Vec<usize>> = configs.iter().map(|q| q.counts(n_w)).collect();
    for k in 0..n_phases {
        for i in 0..n_w {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for (qi, cnt) in counts.iter().enumerate() {
                if cnt[i] > 0 {
                    for j in k..n_phases {
                        coeffs.push((var(qi, j), cnt[i] as f64));
                    }
                }
            }
            p.add_constraint(&coeffs, Cmp::Ge, data.suffix_demand(k, i));
        }
    }

    let sol: Solution = spp_lp::solve(&p);
    if sol.status != Status::Optimal {
        return None;
    }
    debug_assert!(
        spp_lp::certify(&p, &sol, 1e-5).is_ok(),
        "configuration LP optimality certificate failed: {:?}",
        spp_lp::certify(&p, &sol, 1e-5)
    );

    let mut entries = Vec::new();
    for (qi, q) in configs.iter().enumerate() {
        for j in 0..n_phases {
            let x = sol.x[var(qi, j)];
            if x > 1e-9 {
                entries.push((q.clone(), j, x));
            }
        }
    }
    entries.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));

    let packing_duals = sol.duals[..r].to_vec();
    let mut covering_duals = vec![vec![0.0; n_w]; n_phases];
    for (k, row) in covering_duals.iter_mut().enumerate() {
        for (i, cell) in row.iter_mut().enumerate() {
            *cell = sol.duals[r + k * n_w + i];
        }
    }
    let t_r = *data.boundaries.last().expect("non-empty boundaries");
    Some(FractionalSolution {
        entries,
        lp_objective: sol.objective,
        total_height: t_r + sol.objective,
        packing_duals,
        covering_duals,
        iterations: sol.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;

    fn data_for(dims: &[(f64, f64, f64)], widths: &[f64]) -> LpData {
        let inst = Instance::from_dims_release(dims).unwrap();
        let class_of: Vec<usize> = inst
            .items()
            .iter()
            .map(|it| {
                widths
                    .iter()
                    .position(|&w| (w - it.w).abs() < 1e-12)
                    .unwrap()
            })
            .collect();
        LpData::new(&inst, widths, &class_of)
    }

    #[test]
    fn boundaries_include_zero() {
        let d = data_for(&[(0.5, 1.0, 2.0)], &[0.5]);
        assert_eq!(d.boundaries, vec![0.0, 2.0]);
        assert_eq!(d.r(), 1);
        // demand only at t_1
        assert_eq!(d.demand[0], vec![0.0]);
        assert_eq!(d.demand[1], vec![1.0]);
    }

    #[test]
    fn no_release_lp_is_fractional_strip_packing() {
        // two widths 0.5, demand heights 3 total: fractional OPT = 1.5
        // (pairs of half-width slices side by side)
        let d = data_for(&[(0.5, 1.0, 0.0), (0.5, 1.0, 0.0), (0.5, 1.0, 0.0)], &[0.5]);
        let configs = enumerate_configs(&d.widths);
        let f = solve_with_configs(&d, &configs).unwrap();
        spp_core::assert_close!(f.total_height, 1.5, 1e-6);
    }

    #[test]
    fn release_forces_waiting() {
        // one item released at 5 with height 1: OPT_f = 6 regardless of
        // how much fits before.
        let d = data_for(&[(1.0, 1.0, 5.0)], &[1.0]);
        let configs = enumerate_configs(&d.widths);
        let f = solve_with_configs(&d, &configs).unwrap();
        spp_core::assert_close!(f.total_height, 6.0, 1e-6);
    }

    #[test]
    fn early_phase_absorbs_early_work() {
        // item A (width 1, h 2) at release 0; item B (width 1, h 1) at
        // release 2. Fractionally A fills [0,2) and B [2,3): OPT_f = 3.
        let d = data_for(&[(1.0, 2.0, 0.0), (1.0, 1.0, 2.0)], &[1.0]);
        let configs = enumerate_configs(&d.widths);
        let f = solve_with_configs(&d, &configs).unwrap();
        spp_core::assert_close!(f.total_height, 3.0, 1e-6);
    }

    #[test]
    fn phase_capacity_limits_early_packing() {
        // window [0, 1) but 3 units of width-1 demand at release 0 and an
        // item at release 1: the excess spills past t_R.
        let d = data_for(
            &[
                (1.0, 1.0, 0.0),
                (1.0, 1.0, 0.0),
                (1.0, 1.0, 0.0),
                (1.0, 0.5, 1.0),
            ],
            &[1.0],
        );
        let configs = enumerate_configs(&d.widths);
        let f = solve_with_configs(&d, &configs).unwrap();
        // t_R = 1; phase 0 absorbs 1 unit; remaining 2 + 0.5 beyond ->
        // OPT_f = 1 + 2.5 = 3.5
        spp_core::assert_close!(f.total_height, 3.5, 1e-6);
    }

    #[test]
    fn parallel_halves_save_height() {
        // two width-0.5 items (h=1) released at 1: they share a shelf;
        // OPT_f = 2.
        let d = data_for(&[(0.5, 1.0, 1.0), (0.5, 1.0, 1.0)], &[0.5]);
        let configs = enumerate_configs(&d.widths);
        let f = solve_with_configs(&d, &configs).unwrap();
        spp_core::assert_close!(f.total_height, 2.0, 1e-6);
        // the optimal basic solution uses few occurrences
        assert!(f.occurrences() <= (d.widths.len() + 1) * (d.r() + 1));
    }

    #[test]
    fn support_bound_holds_on_random_instances() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let k = 3usize;
            let n = rng.gen_range(3..25);
            let widths_pool = [1.0 / 3.0, 2.0 / 3.0, 1.0];
            let dims: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    (
                        widths_pool[rng.gen_range(0..k)],
                        rng.gen_range(0.1..1.0),
                        (rng.gen_range(0.0..3.0_f64)).floor(),
                    )
                })
                .collect();
            let d = data_for(&dims, &widths_pool);
            let configs = enumerate_configs(&d.widths);
            let f = solve_with_configs(&d, &configs).unwrap();
            let w = d.widths.len();
            let r = d.r();
            assert!(
                f.occurrences() <= (w + 1) * (r + 1),
                "support {} > (W+1)(R+1) = {}",
                f.occurrences(),
                (w + 1) * (r + 1)
            );
            // duals have the documented signs
            for &y in &f.packing_duals {
                assert!(y <= 1e-7, "packing dual {y} > 0");
            }
            for row in &f.covering_duals {
                for &y in row {
                    assert!(y >= -1e-7, "covering dual {y} < 0");
                }
            }
        }
    }

    #[test]
    fn empty_instance_trivial() {
        let d = LpData::new(&Instance::new(vec![]).unwrap(), &[0.5], &[]);
        let f = solve_with_configs(&d, &[]).unwrap();
        assert_eq!(f.total_height, 0.0);
        assert_eq!(f.occurrences(), 0);
    }
}
