//! Online scheduling with release times.
//!
//! §1 motivates release times with *operating systems for reconfigurable
//! platforms* (Steiger–Walder–Platzner): tasks arrive over time and the
//! scheduler places each one **at arrival, irrevocably**, knowing nothing
//! of future arrivals. This module is the event-driven simulator for that
//! setting; the offline APTAS (Algorithm 2) is the clairvoyant comparison
//! point (experiment E13).
//!
//! Two online policies:
//! * **skyline** — drop the arriving task at the lowest-leftmost skyline
//!   position at or above its release time (spatial backfilling);
//! * **shelf** — geometric height classes as in online strip packing
//!   (Csirik–Woeginger), with shelves opened no lower than the release.
//!
//! Besides the makespan, the simulator reports per-task *waiting times*
//! (`start − release`), the metric an OS paper would care about.

use spp_core::{Instance, Placement};
use spp_pack::Skyline;

/// Which online policy to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OnlinePolicy {
    /// Skyline bottom-left with release floors.
    Skyline,
    /// Online shelves with bucketing ratio `r ∈ (0, 1)`.
    Shelf { r: f64 },
}

/// Simulation outcome.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    pub placement: Placement,
    pub makespan: f64,
    /// Mean of `start − release` over all tasks.
    pub mean_wait: f64,
    /// Maximum `start − release`.
    pub max_wait: f64,
    /// Area / (makespan × strip width).
    pub utilization: f64,
}

/// Simulate an online policy. Tasks are processed in release order (ties
/// by id) — the arrival order an online scheduler would see.
pub fn simulate(inst: &Instance, policy: OnlinePolicy) -> OnlineOutcome {
    let mut order: Vec<usize> = (0..inst.len()).collect();
    order.sort_by(|&a, &b| {
        inst.item(a)
            .release
            .partial_cmp(&inst.item(b).release)
            .unwrap()
            .then(a.cmp(&b))
    });

    let mut pl = Placement::zeroed(inst.len());
    match policy {
        OnlinePolicy::Skyline => {
            let mut sky = Skyline::new();
            for &id in &order {
                let it = inst.item(id);
                let (x, y) = sky.best_position(it.w, it.release);
                sky.place(x, y, it.w, it.h);
                pl.set(id, x, y);
            }
        }
        OnlinePolicy::Shelf { r } => {
            assert!(r > 0.0 && r < 1.0, "bucketing ratio must be in (0,1)");
            // open shelves: (class, y, used, nominal)
            struct Shelf {
                class: i32,
                y: f64,
                used: f64,
            }
            let mut shelves: Vec<Shelf> = Vec::new();
            let mut top = 0.0f64;
            let class_of = |h: f64| -> i32 {
                let mut k = (h.ln() / r.ln()).floor() as i32;
                while r.powi(k) < h - spp_core::eps::EPS {
                    k -= 1;
                }
                while r.powi(k + 1) >= h - spp_core::eps::EPS {
                    k += 1;
                }
                k
            };
            for &id in &order {
                let it = inst.item(id);
                let class = class_of(it.h);
                let mut placed = false;
                for s in &mut shelves {
                    if s.class == class
                        && s.used + it.w <= 1.0 + spp_core::eps::EPS
                        && s.y + spp_core::eps::EPS >= it.release
                    {
                        pl.set(id, s.used, s.y);
                        s.used += it.w;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    let y = top.max(it.release);
                    pl.set(id, 0.0, y);
                    top = y + r.powi(class);
                    shelves.push(Shelf {
                        class,
                        y,
                        used: it.w,
                    });
                }
            }
        }
    }

    let makespan = pl.height(inst);
    let waits: Vec<f64> = inst
        .items()
        .iter()
        .map(|it| pl.pos(it.id).y - it.release)
        .collect();
    let mean_wait = if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    let max_wait = waits.iter().cloned().fold(0.0, f64::max);
    OnlineOutcome {
        utilization: if makespan > 0.0 {
            inst.total_area() / makespan
        } else {
            0.0
        },
        placement: pl,
        makespan,
        mean_wait,
        max_wait,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn params() -> spp_gen::release::ReleaseParams {
        spp_gen::release::ReleaseParams {
            k: 4,
            column_widths: true,
            h: (0.1, 1.0),
        }
    }

    #[test]
    fn both_policies_valid_and_waits_nonnegative() {
        let mut rng = StdRng::seed_from_u64(55);
        let inst = spp_gen::release::poisson_arrivals(&mut rng, 40, 0.2, params());
        for policy in [OnlinePolicy::Skyline, OnlinePolicy::Shelf { r: 0.5 }] {
            let out = simulate(&inst, policy);
            spp_core::validate::assert_valid(&inst, &out.placement);
            assert!(out.mean_wait >= 0.0);
            assert!(out.max_wait + 1e-9 >= out.mean_wait);
            assert!(out.utilization > 0.0 && out.utilization <= 1.0);
        }
    }

    #[test]
    fn empty_queue_trivial() {
        let inst = Instance::new(vec![]).unwrap();
        let out = simulate(&inst, OnlinePolicy::Skyline);
        assert_eq!(out.makespan, 0.0);
        assert_eq!(out.mean_wait, 0.0);
    }

    #[test]
    fn skyline_backfills_idle_gaps() {
        // A full-width early task, then two narrow late ones that fit side
        // by side right at their release — zero waiting.
        let inst =
            Instance::from_dims_release(&[(1.0, 1.0, 0.0), (0.5, 1.0, 5.0), (0.5, 1.0, 5.0)])
                .unwrap();
        let out = simulate(&inst, OnlinePolicy::Skyline);
        spp_core::assert_close!(out.makespan, 6.0);
        spp_core::assert_close!(out.max_wait, 0.0);
    }

    #[test]
    fn online_never_beats_offline_opt_f() {
        let mut rng = StdRng::seed_from_u64(56);
        let p = spp_gen::release::ReleaseParams {
            k: 3,
            column_widths: true,
            h: (0.1, 1.0),
        };
        let inst = spp_gen::release::poisson_arrivals(&mut rng, 15, 0.3, p);
        let opt_f = crate::colgen::opt_f(&inst);
        for policy in [OnlinePolicy::Skyline, OnlinePolicy::Shelf { r: 0.5 }] {
            let out = simulate(&inst, policy);
            assert!(
                out.makespan + 1e-6 >= opt_f,
                "online {} beat OPT_f {}",
                out.makespan,
                opt_f
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn simulator_valid_on_random_queues(
            items in proptest::collection::vec(
                (0.25f64..1.0, 0.05f64..1.0, 0.0f64..8.0), 0..40),
            shelf in proptest::bool::ANY,
        ) {
            let inst = Instance::from_dims_release(&items).unwrap();
            let policy = if shelf {
                OnlinePolicy::Shelf { r: 0.62 }
            } else {
                OnlinePolicy::Skyline
            };
            let out = simulate(&inst, policy);
            prop_assert!(spp_core::validate::validate(&inst, &out.placement).is_ok());
        }
    }
}
