//! Lemma 3.1 — rounding release times to `R = ⌈1/ε_r⌉` classes.
//!
//! With `r_max = max_s r_s` and `δ = ε_r·r_max`, every release time is
//! rounded **up** to the next positive multiple of `δ`:
//! `r ← (⌊r/δ⌋ + 1)·δ`. The paper's `P↓`/`P↑` sandwich shows
//! `OPT_f(P(R)) ≤ (1 + ε_r)·OPT_f(P)`; monotonicity (releases never
//! decrease) means a packing of the rounded instance is a packing of the
//! original.
//!
//! When `r_max = 0` (no releases) the instance is returned unchanged with
//! the single level 0.

use spp_core::{Instance, Item};

/// Result of release rounding.
#[derive(Debug, Clone)]
pub struct RoundedReleases {
    /// The rounded instance (same ids, same dims, later-or-equal releases).
    pub inst: Instance,
    /// Distinct rounded release values, ascending (does not include an
    /// artificial 0 unless some item is released at 0).
    pub levels: Vec<f64>,
    /// The grid step `δ = ε_r · r_max` (0 when `r_max = 0`).
    pub delta: f64,
}

/// Round all release times up per Lemma 3.1.
pub fn round_releases(inst: &Instance, epsilon_r: f64) -> RoundedReleases {
    assert!(epsilon_r > 0.0, "epsilon_r must be positive");
    let r_max = inst.max_release();
    if r_max == 0.0 {
        return RoundedReleases {
            inst: inst.clone(),
            levels: if inst.is_empty() { vec![] } else { vec![0.0] },
            delta: 0.0,
        };
    }
    let delta = epsilon_r * r_max;
    let items: Vec<Item> = inst
        .items()
        .iter()
        .map(|it| {
            let steps = (it.release / delta).floor() + 1.0;
            Item::with_release(it.id, it.w, it.h, steps * delta)
        })
        .collect();
    let inst2 = Instance::new(items).expect("rounding preserves validity");
    let mut levels: Vec<f64> = inst2.items().iter().map(|it| it.release).collect();
    levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
    levels.dedup_by(|a, b| (*a - *b).abs() <= spp_core::eps::EPS);
    RoundedReleases {
        inst: inst2,
        levels,
        delta,
    }
}

/// The distinct release values of an (un-rounded) instance, ascending.
pub fn release_levels(inst: &Instance) -> Vec<f64> {
    let mut levels: Vec<f64> = inst.items().iter().map(|it| it.release).collect();
    levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
    levels.dedup_by(|a, b| (*a - *b).abs() <= spp_core::eps::EPS);
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_releases_untouched() {
        let inst = Instance::from_dims_release(&[(0.5, 1.0, 0.0), (0.5, 0.5, 0.0)]).unwrap();
        let r = round_releases(&inst, 0.5);
        assert_eq!(r.inst, inst);
        assert_eq!(r.levels, vec![0.0]);
        assert_eq!(r.delta, 0.0);
    }

    #[test]
    fn releases_round_up_to_grid() {
        // r_max = 10, eps = 0.25 -> delta = 2.5
        let inst = Instance::from_dims_release(&[
            (0.5, 1.0, 0.0),
            (0.5, 1.0, 2.4),
            (0.5, 1.0, 2.5),
            (0.5, 1.0, 10.0),
        ])
        .unwrap();
        let r = round_releases(&inst, 0.25);
        spp_core::assert_close!(r.delta, 2.5);
        spp_core::assert_close!(r.inst.item(0).release, 2.5); // 0 -> first level
        spp_core::assert_close!(r.inst.item(1).release, 2.5);
        spp_core::assert_close!(r.inst.item(2).release, 5.0); // exact multiple bumps up
        spp_core::assert_close!(r.inst.item(3).release, 12.5); // r_max + delta
    }

    #[test]
    fn release_count_bounded_by_r_plus_one() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let n = rng.gen_range(1..60);
            let dims: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.25..1.0),
                        rng.gen_range(0.1..1.0),
                        rng.gen_range(0.0..20.0),
                    )
                })
                .collect();
            let inst = Instance::from_dims_release(&dims).unwrap();
            let eps = [1.0, 0.5, 0.25][rng.gen_range(0..3usize)];
            let r = round_releases(&inst, eps);
            let cap = (1.0 / eps).ceil() as usize + 1;
            assert!(
                r.levels.len() <= cap,
                "{} levels > R+1 = {cap}",
                r.levels.len()
            );
        }
    }

    #[test]
    fn monotone_never_decreases() {
        let inst = Instance::from_dims_release(&[(0.5, 1.0, 3.3), (0.5, 1.0, 7.9)]).unwrap();
        let r = round_releases(&inst, 0.2);
        for (orig, rounded) in inst.items().iter().zip(r.inst.items()) {
            assert!(rounded.release >= orig.release);
            // ... and by at most delta
            assert!(rounded.release <= orig.release + r.delta + spp_core::eps::EPS);
            assert_eq!(orig.w, rounded.w);
            assert_eq!(orig.h, rounded.h);
        }
    }

    #[test]
    fn levels_are_sorted_distinct() {
        let inst =
            Instance::from_dims_release(&[(0.5, 1.0, 1.0), (0.5, 1.0, 1.0), (0.5, 1.0, 9.0)])
                .unwrap();
        let r = round_releases(&inst, 0.34);
        for w in r.levels.windows(2) {
            assert!(w[0] < w[1]);
        }
        // every item's release is one of the levels
        for it in r.inst.items() {
            assert!(r.levels.iter().any(|&l| (l - it.release).abs() < 1e-12));
        }
    }

    #[test]
    fn raw_levels_helper() {
        let inst =
            Instance::from_dims_release(&[(0.5, 1.0, 5.0), (0.5, 1.0, 0.0), (0.5, 1.0, 5.0)])
                .unwrap();
        assert_eq!(release_levels(&inst), vec![0.0, 5.0]);
    }
}
