//! Bearer-token authentication for the serve/dispatch endpoints.
//!
//! The trust model is a *shared secret on a private network*: one token,
//! provisioned as a file on every machine of a fleet (`--token-file`),
//! gates the endpoints that mutate state or burn CPU — `PUT /cache/*`,
//! `POST /solve`, `POST /work/*`. Read-only endpoints (`GET /cache/*`,
//! `/stats`, `/work/status`, `/work/report`) stay open: they leak
//! nothing a fleet operator considers secret and keeping them open means
//! dashboards and health checks need no credential plumbing. Transport
//! privacy (TLS) is explicitly out of scope for this binary — the
//! no-new-deps constraint rules out rustls, so deployments that cross
//! untrusted networks terminate TLS at a reverse proxy in front (see
//! README, "Deploying a cache fleet").
//!
//! The comparison is constant-time in the token *contents*: a mismatch
//! at byte 0 and a mismatch at byte 31 cost the same, so response timing
//! cannot be used to guess the token byte by byte. Length still gates
//! early (two tokens of different length are not compared byte-wise);
//! leaking the token's *length* is accepted — operators provision long
//! random tokens, where length is no secret worth guarding.

use std::path::Path;

/// Constant-time byte-slice equality. `true` iff `a == b`; runtime
/// depends only on the slices' lengths, never on where they differ.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Extract the token from an `Authorization` header value using the
/// `Bearer` scheme (scheme name case-insensitive per RFC 9110 §11.1).
/// Anything else — other schemes, a bare token, an empty credential —
/// is `None`.
pub fn bearer_token(header_value: &str) -> Option<&str> {
    let (scheme, credential) = header_value.trim().split_once(' ')?;
    if !scheme.eq_ignore_ascii_case("bearer") {
        return None;
    }
    let credential = credential.trim();
    if credential.is_empty() {
        return None;
    }
    Some(credential)
}

/// Load a shared token from a file (the `--token-file` flag): the file's
/// contents with surrounding whitespace trimmed, so a trailing newline
/// from `echo` or an editor never silently changes the secret. An
/// unreadable file or an empty token is an error — an empty secret is a
/// misconfiguration, not a credential.
pub fn token_from_file(path: &Path) -> Result<String, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read token file {}: {e}", path.display()))?;
    let token = raw.trim();
    if token.is_empty() {
        return Err(format!("token file {} is empty", path.display()));
    }
    if token.chars().any(|c| c.is_control() || !c.is_ascii()) {
        return Err(format!(
            "token file {} contains non-ASCII or control characters",
            path.display()
        ));
    }
    Ok(token.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_time_eq_agrees_with_plain_equality() {
        assert!(constant_time_eq(b"", b""));
        assert!(constant_time_eq(b"secret", b"secret"));
        assert!(!constant_time_eq(b"secret", b"secreT"));
        assert!(!constant_time_eq(b"secret", b"secre"));
        assert!(!constant_time_eq(b"Xecret", b"secret"));
        assert!(!constant_time_eq(b"secret", b""));
    }

    #[test]
    fn bearer_scheme_parsing() {
        assert_eq!(bearer_token("Bearer tok"), Some("tok"));
        assert_eq!(bearer_token("bearer tok"), Some("tok"));
        assert_eq!(bearer_token("BEARER  tok "), Some("tok"));
        assert_eq!(bearer_token("Basic dXNlcjpwYXNz"), None);
        assert_eq!(bearer_token("Bearer"), None);
        assert_eq!(bearer_token("Bearer "), None);
        assert_eq!(bearer_token("tok"), None);
        assert_eq!(bearer_token(""), None);
    }

    #[test]
    fn token_file_trims_and_validates() {
        let dir = std::env::temp_dir().join("spp_serve_auth_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let good = dir.join("token");
        std::fs::write(&good, "s3cr3t-token\n").unwrap();
        assert_eq!(token_from_file(&good).unwrap(), "s3cr3t-token");

        let empty = dir.join("empty");
        std::fs::write(&empty, "  \n").unwrap();
        assert!(token_from_file(&empty).unwrap_err().contains("empty"));

        let binary = dir.join("binary");
        std::fs::write(&binary, "tok\u{7}en").unwrap();
        assert!(token_from_file(&binary).is_err());

        assert!(token_from_file(&dir.join("missing")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
