//! In-repo load generator for the serving layer — the measurement half
//! of "serves heavy traffic": `spp bench serve` drives a target endpoint
//! with N concurrent clients and reports RPS plus latency quantiles from
//! a [`Hist`](spp_core::hist::Hist), so every serving change has a
//! number to diff against (`BENCH_SERVE.json`).
//!
//! Two transport modes, deliberately the two paths production code can
//! take:
//!
//! * [`Mode::Keepalive`] — each client thread reuses one persistent
//!   connection via [`http::pooled_roundtrip`], exactly the transport
//!   `HttpCache` and `RemoteLease` ride;
//! * [`Mode::Close`] — one connection per request
//!   ([`http::roundtrip`]), the pre-keep-alive behavior, kept as the
//!   baseline that keep-alive must beat.
//!
//! Two pacing disciplines:
//!
//! * **closed loop** (no `rate`): each client fires its next request the
//!   moment the previous response lands — measures the server's maximum
//!   sustainable throughput at this concurrency;
//! * **open loop** (`rate` = target RPS across all clients): requests
//!   are fired on a fixed schedule regardless of response times, and
//!   latency is measured from the *scheduled* send time — the standard
//!   correction for coordinated omission, so a stalled server shows up
//!   as tail latency instead of silently slowing the load down.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use spp_core::hist::Hist;

use crate::http;

/// Transport discipline under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// One pooled persistent connection per client thread.
    Keepalive,
    /// A fresh connection (and full TCP setup/teardown) per request.
    Close,
}

impl Mode {
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Keepalive => "keepalive",
            Mode::Close => "close",
        }
    }
}

/// When the run stops.
#[derive(Debug, Clone, Copy)]
pub enum Stop {
    /// Run for a fixed wall-clock window.
    Duration(Duration),
    /// Run until this many requests completed (across all clients).
    Requests(u64),
}

/// The request every client repeats.
#[derive(Debug, Clone)]
pub struct Target {
    pub method: String,
    pub path_and_query: String,
    pub body: String,
}

/// One load-generation run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// `host:port` of the server under test.
    pub authority: String,
    /// Concurrent client threads (each with its own connection in
    /// keep-alive mode).
    pub clients: usize,
    pub mode: Mode,
    pub target: Target,
    pub stop: Stop,
    /// Open-loop target rate in requests/second across all clients;
    /// `None` runs closed-loop (back to back).
    pub rate: Option<f64>,
    /// Idle keep-alive connections opened *alongside* the active
    /// clients: each connects, never sends a byte, and holds its socket
    /// until the measured run ends. This is the load shape the event
    ///-driven I/O mode exists for — RPS-vs-idle-count is the number
    /// that separates `--io-mode event` from blocking.
    pub idle_clients: usize,
}

/// What a run measured.
pub struct BenchResult {
    /// Requests that completed with a transport-level response.
    pub requests: u64,
    /// Transport failures plus responses with status ≥ 400.
    pub errors: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// `requests / wall_s`.
    pub rps: f64,
    /// Latency of successful requests, in nanoseconds.
    pub hist: Hist,
    /// Idle connections that were actually open when measurement began.
    pub idle_connected: u64,
    /// Idle connections that failed to connect within
    /// [`IDLE_CONNECT_TIMEOUT`] — on a blocking-mode server with a full
    /// accept backlog this is where the degradation shows up first.
    pub idle_errors: u64,
}

impl BenchResult {
    /// Latency quantile in milliseconds.
    pub fn latency_ms(&self, q: f64) -> f64 {
        self.hist.quantile(q) / 1e6
    }
}

/// Claim one unit of remaining work; `false` once the count is spent.
fn claim(remaining: &AtomicU64) -> bool {
    remaining
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
}

/// Per-connection budget for standing up the idle fleet. Long enough
/// to survive one SYN retransmit (the whole fleet arrives as a burst,
/// so a briefly overflowing accept backlog is normal), short enough
/// that a blocking server whose backlog is *persistently* drowned
/// reports idle errors instead of stalling the whole benchmark.
pub const IDLE_CONNECT_TIMEOUT: Duration = Duration::from_millis(2500);

/// Threads used to stand the idle fleet up (and hold it).
const IDLE_HOLDER_THREADS: usize = 8;

/// Open and hold one holder thread's share of the idle fleet until
/// `done`; sockets stay connected and silent the whole time.
fn hold_idle_connections(
    authority: &str,
    share: usize,
    connected: &AtomicU64,
    errors: &AtomicU64,
    done: &AtomicBool,
) {
    let addr = authority.to_socket_addrs().ok().and_then(|mut a| a.next());
    let mut held = Vec::with_capacity(share);
    for _ in 0..share {
        // A 1 ms ramp per connection keeps eight holder threads from
        // landing the entire fleet as one SYN spike.
        std::thread::sleep(Duration::from_millis(1));
        let stream = addr
            .ok_or(())
            .and_then(|a| TcpStream::connect_timeout(&a, IDLE_CONNECT_TIMEOUT).map_err(|_| ()));
        match stream {
            Ok(s) => {
                held.push(s);
                connected.fetch_add(1, Ordering::Relaxed);
            }
            Err(()) => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    while !done.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(held);
}

/// Run one load-generation configuration to completion.
pub fn run_bench(cfg: &BenchConfig) -> BenchResult {
    let clients = cfg.clients.max(1);
    let remaining: Option<AtomicU64> = match cfg.stop {
        Stop::Requests(n) => Some(AtomicU64::new(n)),
        Stop::Duration(_) => None,
    };
    let errors = AtomicU64::new(0);
    let requests = AtomicU64::new(0);
    // Per-thread schedule for open loop: the fleet-wide rate divides
    // evenly across clients, and client `i` is phase-shifted so request
    // arrivals interleave instead of bursting every period.
    let interval = cfg
        .rate
        .filter(|r| *r > 0.0)
        .map(|r| Duration::from_secs_f64(clients as f64 / r));
    let merged = Mutex::new(Hist::new());

    let done = AtomicBool::new(false);
    let idle_connected = AtomicU64::new(0);
    let idle_errors = AtomicU64::new(0);
    let mut wall_s = 0.0;
    std::thread::scope(|fleet| {
        // Stand up the idle fleet first and let it settle, so the
        // measured window sees a steady parked population rather than a
        // connect storm.
        if cfg.idle_clients > 0 {
            let holders = IDLE_HOLDER_THREADS.min(cfg.idle_clients);
            for h in 0..holders {
                let share =
                    cfg.idle_clients / holders + usize::from(h < cfg.idle_clients % holders);
                let authority = &cfg.authority;
                let (connected, errs, done) = (&idle_connected, &idle_errors, &done);
                fleet.spawn(move || hold_idle_connections(authority, share, connected, errs, done));
            }
            while idle_connected.load(Ordering::Relaxed) + idle_errors.load(Ordering::Relaxed)
                < cfg.idle_clients as u64
            {
                std::thread::sleep(Duration::from_millis(2));
            }
        }

        let started = Instant::now();
        let deadline = match cfg.stop {
            Stop::Duration(d) => Some(started + d),
            Stop::Requests(_) => None,
        };
        std::thread::scope(|scope| {
            for idx in 0..clients {
                let remaining = remaining.as_ref();
                let errors = &errors;
                let requests = &requests;
                let merged = &merged;
                let cfg = &*cfg;
                scope.spawn(move || {
                    let mut hist = Hist::new();
                    let phase = interval.map(|iv| iv.mul_f64(idx as f64 / clients as f64));
                    let mut fired: u32 = 0;
                    loop {
                        // Scheduled send time (open loop) or "now" (closed).
                        let scheduled = match (interval, phase) {
                            (Some(iv), Some(phase)) => {
                                let at = started + phase + iv * fired;
                                if deadline.is_some_and(|d| at >= d) {
                                    break;
                                }
                                let now = Instant::now();
                                if at > now {
                                    std::thread::sleep(at - now);
                                }
                                at
                            }
                            _ => {
                                if deadline.is_some_and(|d| Instant::now() >= d) {
                                    break;
                                }
                                Instant::now()
                            }
                        };
                        if let Some(remaining) = remaining {
                            if !claim(remaining) {
                                break;
                            }
                        }
                        fired += 1;
                        let outcome = match cfg.mode {
                            Mode::Keepalive => http::pooled_roundtrip(
                                &cfg.authority,
                                &cfg.target.method,
                                &cfg.target.path_and_query,
                                &cfg.target.body,
                            ),
                            Mode::Close => http::roundtrip(
                                &cfg.authority,
                                &cfg.target.method,
                                &cfg.target.path_and_query,
                                &cfg.target.body,
                            ),
                        };
                        match outcome {
                            Ok(response) if response.status < 400 => {
                                requests.fetch_add(1, Ordering::Relaxed);
                                let nanos = scheduled.elapsed().as_nanos().min(u64::MAX as u128);
                                hist.record(nanos as u64);
                            }
                            Ok(_) => {
                                requests.fetch_add(1, Ordering::Relaxed);
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    // Leave nothing pooled past the run: the next run (or
                    // mode) starts from a cold connection state.
                    http::pool_evict(&cfg.authority);
                    merged
                        .lock()
                        .expect("bench hist mutex poisoned")
                        .merge(&hist);
                });
            }
        });
        wall_s = started.elapsed().as_secs_f64();
        // Measurement over: release the idle holders.
        done.store(true, Ordering::Release);
    });
    let requests = requests.load(Ordering::Relaxed);
    BenchResult {
        requests,
        errors: errors.load(Ordering::Relaxed),
        wall_s,
        rps: if wall_s > 0.0 {
            requests as f64 / wall_s
        } else {
            0.0
        },
        hist: merged.into_inner().expect("bench hist mutex poisoned"),
        idle_connected: idle_connected.load(Ordering::Relaxed),
        idle_errors: idle_errors.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};

    fn stats_target() -> Target {
        Target {
            method: "GET".into(),
            path_and_query: "/stats".into(),
            body: String::new(),
        }
    }

    fn cache_server(tag: &str) -> crate::server::ServerHandle {
        let dir = std::env::temp_dir().join(format!("spp_bench_mod_{tag}_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let mut config = ServeConfig::new(&dir);
        config.workers = 2;
        Server::bind(&config)
            .expect("bind bench test server")
            .spawn()
    }

    #[test]
    fn closed_loop_request_count_is_exact_and_error_free() {
        let server = cache_server("closed");
        let cfg = BenchConfig {
            authority: server.authority(),
            clients: 3,
            mode: Mode::Keepalive,
            target: stats_target(),
            stop: Stop::Requests(30),
            rate: None,
            idle_clients: 0,
        };
        let result = run_bench(&cfg);
        assert_eq!(result.requests, 30);
        assert_eq!(result.errors, 0);
        assert_eq!(result.hist.count(), 30);
        assert!(result.rps > 0.0);
        assert!(result.latency_ms(0.99) >= result.latency_ms(0.50));
        // Keep-alive actually reused connections: fewer connections than
        // requests, and the server saw the reuses.
        let counters = server.counters();
        assert!(
            counters.keepalive_reuses > 0,
            "no reuse recorded: {counters:?}"
        );
        assert!(counters.connections_accepted < 30 + 1);
        server.shutdown();
    }

    #[test]
    fn close_mode_opens_one_connection_per_request() {
        let server = cache_server("close_mode");
        let cfg = BenchConfig {
            authority: server.authority(),
            clients: 2,
            mode: Mode::Close,
            target: stats_target(),
            stop: Stop::Requests(10),
            rate: None,
            idle_clients: 0,
        };
        let result = run_bench(&cfg);
        assert_eq!(result.requests, 10);
        assert_eq!(result.errors, 0);
        let counters = server.counters();
        assert_eq!(counters.keepalive_reuses, 0, "{counters:?}");
        assert!(counters.connections_accepted >= 10);
        server.shutdown();
    }

    #[test]
    fn open_loop_respects_duration_and_schedule() {
        let server = cache_server("open");
        let cfg = BenchConfig {
            authority: server.authority(),
            clients: 2,
            mode: Mode::Keepalive,
            target: stats_target(),
            stop: Stop::Duration(Duration::from_millis(300)),
            rate: Some(100.0),
            idle_clients: 0,
        };
        let result = run_bench(&cfg);
        // ~30 scheduled arrivals in 300ms at 100 rps; the exact count
        // depends on phase, but it must be bounded by the schedule, not
        // by server speed.
        assert!(result.requests > 0, "no requests completed");
        assert!(
            result.requests <= 40,
            "open loop overshot the schedule: {}",
            result.requests
        );
        assert_eq!(result.errors, 0);
        server.shutdown();
    }

    #[test]
    fn unreachable_server_counts_errors_not_requests() {
        let cfg = BenchConfig {
            authority: "127.0.0.1:1".into(),
            clients: 1,
            mode: Mode::Close,
            target: stats_target(),
            stop: Stop::Requests(3),
            rate: None,
            idle_clients: 0,
        };
        let result = run_bench(&cfg);
        assert_eq!(result.requests, 0);
        assert_eq!(result.errors, 3);
        assert_eq!(result.hist.count(), 0);
    }

    #[test]
    fn idle_fleet_is_held_through_the_measured_run() {
        let server = cache_server("idle_fleet");
        let cfg = BenchConfig {
            authority: server.authority(),
            clients: 1,
            mode: Mode::Keepalive,
            target: stats_target(),
            stop: Stop::Requests(5),
            rate: None,
            idle_clients: 3,
        };
        let result = run_bench(&cfg);
        assert_eq!(result.idle_connected, 3, "idle fleet failed to stand up");
        assert_eq!(result.idle_errors, 0);
        // The idle connections must not have produced requests — only
        // the active client's traffic is measured.
        assert_eq!(result.requests, 5);
        assert_eq!(result.errors, 0);
        server.shutdown();
    }
}
