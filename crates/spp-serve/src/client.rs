//! `HttpCache` — the network backend of the engine's [`SolveCache`]
//! trait, speaking the `spp serve` cache protocol.
//!
//! Attach it wherever a `DiskCache` goes (`spp batch --cache-url …`) and
//! every worker process on every machine shares one cache through the
//! same trait seam, with the same trust model:
//!
//! * `get` is infallible — a network failure, a 404, or an entry whose
//!   embedded key does not match the request is simply a **miss** (the
//!   pipeline recomputes; nothing wrong is ever served);
//! * `put` reports real failures — a user who pointed a run at a cache
//!   server should hear that it is unreachable rather than silently
//!   paying full solve cost on every "warm" rerun.
//!
//! The client re-validates every fetched entry against the *requested*
//! key (digest, solver, full config signature), so a confused or
//! malicious server — or a config-fingerprint collision — degrades to
//! recomputation, exactly like a damaged file in a `DiskCache` directory.
//!
//! Transient transport faults get **one bounded retry**
//! ([`http::roundtrip_retry`]): a reset connection or timeout on `get`
//! or `put` sleeps briefly and tries once more before the usual
//! degradation applies (cold-cache miss on `get`, loud error on `put`),
//! so a momentarily busy server does not turn a warm run cold.
//!
//! Transport is **pooled keep-alive**: each calling thread reuses one
//! persistent connection per server ([`http::pooled_roundtrip`]), so a
//! warm batch run pays TCP setup once per thread, not once per cell. A
//! pooled socket the server closed in the meantime (idle timeout,
//! request budget) is replaced transparently — that race is expected,
//! not a fault, and does not consume the bounded retry.

use std::sync::atomic::{AtomicU64, Ordering};

use spp_engine::cache::{entry_parse, entry_to_json};
use spp_engine::{CacheError, CacheKey, CacheStats, CachedCell, SolveCache};

use crate::http;

/// A [`SolveCache`] served over HTTP by `spp serve`.
pub struct HttpCache {
    /// `host:port` of the server.
    authority: String,
    /// Base URL as given (for error messages).
    url: String,
    readonly: bool,
    /// Bearer token attached to every request (`Authorization: Bearer …`)
    /// when the server requires one.
    token: Option<String>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    rejected: AtomicU64,
}

impl HttpCache {
    /// Parse a base URL of the form `http://host:port` (a trailing slash
    /// is tolerated; any path prefix, scheme other than `http`, or
    /// missing port is an error — explicit beats guessed for a cache
    /// that silently degrades to misses on any mismatch).
    pub fn new(url: &str, readonly: bool) -> Result<HttpCache, CacheError> {
        let authority = http::parse_base_url(url).map_err(|err| CacheError::Io {
            path: url.to_string(),
            err: format!("cache {err}"),
        })?;
        Ok(HttpCache {
            authority,
            url: url.to_string(),
            readonly,
            token: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// Attach a bearer token sent with every request — required when the
    /// server runs with `--token-file`.
    pub fn with_token(mut self, token: Option<String>) -> HttpCache {
        self.token = token;
        self
    }

    /// The base URL this client targets.
    pub fn url(&self) -> &str {
        &self.url
    }

    /// True iff `put` never writes.
    pub fn is_readonly(&self) -> bool {
        self.readonly
    }

    fn path_for(key: &CacheKey) -> String {
        let file_name = key.file_name();
        let stem = file_name.strip_suffix(".json").unwrap_or(&file_name);
        format!("/cache/{stem}")
    }

    /// `put` with the failure mode kept apart: the fan-out backend
    /// ([`ShardedCache`](crate::ShardedCache)) tolerates an *unreachable*
    /// replica (node loss degrades to misses) but must surface a live
    /// server *refusing* a write (4xx/5xx — a config or auth problem
    /// that silence would hide).
    pub fn put_classified(&self, key: &CacheKey, cell: &CachedCell) -> PutOutcome {
        if self.readonly {
            return PutOutcome::Written;
        }
        let body = entry_to_json(key, cell);
        let response = match http::roundtrip_retry_auth(
            &self.authority,
            "PUT",
            &Self::path_for(key),
            &body,
            self.token.as_deref(),
        ) {
            Ok(r) => r,
            Err(e) => {
                return PutOutcome::Unreachable(CacheError::Io {
                    path: self.url.clone(),
                    err: e.to_string(),
                })
            }
        };
        match response.status {
            204 | 200 => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                PutOutcome::Written
            }
            status => PutOutcome::Rejected(CacheError::Io {
                path: self.url.clone(),
                err: format!("PUT rejected with HTTP {status}: {}", response.body.trim()),
            }),
        }
    }
}

/// Outcome of [`HttpCache::put_classified`].
pub enum PutOutcome {
    /// The entry was accepted (or the client is read-only: contractual
    /// no-op).
    Written,
    /// A live server refused the write (non-2xx response).
    Rejected(CacheError),
    /// The server could not be reached (connect/timeout/transport), even
    /// after the bounded retry.
    Unreachable(CacheError),
}

impl SolveCache for HttpCache {
    fn get(&self, key: &CacheKey) -> Option<CachedCell> {
        let miss = |rejected: bool| {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if rejected {
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
            None
        };
        let response = match http::roundtrip_retry_auth(
            &self.authority,
            "GET",
            &Self::path_for(key),
            "",
            self.token.as_deref(),
        ) {
            Ok(r) => r,
            Err(_) => return miss(false), // unreachable server = cold cache
        };
        if response.status != 200 {
            return miss(false);
        }
        match entry_parse(&response.body) {
            // Same rule as DiskCache: serve only when the *embedded* key
            // matches the request, so server confusion and fingerprint
            // collisions degrade to recomputation.
            Ok((entry_key, cell)) if entry_key == *key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cell)
            }
            _ => miss(true),
        }
    }

    fn put(&self, key: &CacheKey, cell: &CachedCell) -> Result<(), CacheError> {
        match self.put_classified(key, cell) {
            PutOutcome::Written => Ok(()),
            PutOutcome::Rejected(e) | PutOutcome::Unreachable(e) => Err(e),
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_host_port_only() {
        assert!(HttpCache::new("http://127.0.0.1:8080", false).is_ok());
        assert!(HttpCache::new("http://localhost:8080/", false).is_ok());
        for bad in [
            "127.0.0.1:8080",            // no scheme
            "https://127.0.0.1:8080",    // wrong scheme
            "http://127.0.0.1",          // no port
            "http://127.0.0.1:x",        // bad port
            "http://127.0.0.1:80/cache", // path prefix
            "http://",                   // empty authority
        ] {
            assert!(HttpCache::new(bad, false).is_err(), "{bad} accepted");
        }
    }

    /// A stub cache server whose first `fail_first` connections are
    /// accepted and immediately closed (the transient-fault shape: a
    /// reset/overloaded peer), after which it serves `conns` requests
    /// properly: `entry_body` for GETs, 204 for PUTs.
    fn flaky_stub(entry_body: String, fail_first: usize, conns: usize) -> std::net::SocketAddr {
        use std::io::{BufRead as _, BufReader, Read as _};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for n in 0..conns {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                if n < fail_first {
                    drop(stream); // close before answering: transient fault
                    continue;
                }
                let mut reader = BufReader::new(&stream);
                let mut request_line = String::new();
                if reader.read_line(&mut request_line).is_err() {
                    continue;
                }
                let method = request_line.split(' ').next().unwrap_or("").to_string();
                let mut content_length = 0usize;
                loop {
                    let mut header = String::new();
                    if reader.read_line(&mut header).is_err() || header.trim().is_empty() {
                        break;
                    }
                    if let Some((name, value)) = header.trim().split_once(':') {
                        if name.eq_ignore_ascii_case("content-length") {
                            content_length = value.trim().parse().unwrap_or(0);
                        }
                    }
                }
                let mut body = vec![0u8; content_length];
                let _ = reader.read_exact(&mut body);
                let (status, reply) = if method == "GET" {
                    (200, entry_body.as_str())
                } else {
                    (204, "")
                };
                let _ = http::write_response(&stream, status, "application/json", reply);
            }
        });
        addr
    }

    #[test]
    fn transient_failures_are_retried_once_then_degrade() {
        let k = CacheKey {
            digest: spp_core::InstanceDigest::of_canonical_json("retry"),
            solver: "nfdh".into(),
            config_sig: spp_engine::SolveConfig::default().signature(),
        };
        let c = CachedCell {
            status: spp_engine::CellStatus::Solved,
            makespan: 2.5,
            combined_lb: 1.25,
            improved_from: None,
        };
        let body = entry_to_json(&k, &c);

        // First connection dies, the retry lands: the get is a HIT, not
        // a cold-cache miss.
        let addr = flaky_stub(body.clone(), 1, 2);
        let cache = HttpCache::new(&format!("http://{addr}"), false).unwrap();
        assert_eq!(cache.get(&k), Some(c));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 0);

        // Same for put: one flaky accept, then the write succeeds.
        let addr = flaky_stub(body.clone(), 1, 2);
        let cache = HttpCache::new(&format!("http://{addr}"), false).unwrap();
        assert!(cache.put(&k, &c).is_ok());
        assert_eq!(cache.stats().writes, 1);

        // Both attempts failing degrades as documented: get is a miss,
        // put is a loud error — the retry budget is bounded.
        let addr = flaky_stub(body, 2, 2);
        let cache = HttpCache::new(&format!("http://{addr}"), false).unwrap();
        assert_eq!(cache.get(&k), None);
        assert_eq!(cache.stats().misses, 1);
        let addr = flaky_stub(String::new(), 2, 2);
        let cache = HttpCache::new(&format!("http://{addr}"), false).unwrap();
        assert!(cache.put(&k, &c).is_err());
    }

    #[test]
    fn unreachable_server_is_a_cold_cache_not_an_error() {
        // Reserved TEST-NET address: connect fails fast.
        let cache = HttpCache::new("http://127.0.0.1:1", false).unwrap();
        let key = CacheKey {
            digest: spp_core::InstanceDigest::of_canonical_json("x"),
            solver: "nfdh".into(),
            config_sig: "sig".into(),
        };
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().rejected, 0);
        // put, by contrast, surfaces the failure.
        let cell = CachedCell {
            status: spp_engine::CellStatus::Solved,
            makespan: 1.0,
            combined_lb: 1.0,
            improved_from: None,
        };
        assert!(cache.put(&key, &cell).is_err());
        // …unless the client is read-only, where put is a contractual no-op.
        let ro = HttpCache::new("http://127.0.0.1:1", true).unwrap();
        assert!(ro.put(&key, &cell).is_ok());
        assert_eq!(ro.stats().writes, 0);
    }
}
