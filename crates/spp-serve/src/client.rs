//! `HttpCache` — the network backend of the engine's [`SolveCache`]
//! trait, speaking the `spp serve` cache protocol.
//!
//! Attach it wherever a `DiskCache` goes (`spp batch --cache-url …`) and
//! every worker process on every machine shares one cache through the
//! same trait seam, with the same trust model:
//!
//! * `get` is infallible — a network failure, a 404, or an entry whose
//!   embedded key does not match the request is simply a **miss** (the
//!   pipeline recomputes; nothing wrong is ever served);
//! * `put` reports real failures — a user who pointed a run at a cache
//!   server should hear that it is unreachable rather than silently
//!   paying full solve cost on every "warm" rerun.
//!
//! The client re-validates every fetched entry against the *requested*
//! key (digest, solver, full config signature), so a confused or
//! malicious server — or a config-fingerprint collision — degrades to
//! recomputation, exactly like a damaged file in a `DiskCache` directory.

use std::sync::atomic::{AtomicU64, Ordering};

use spp_engine::cache::{entry_parse, entry_to_json};
use spp_engine::{CacheError, CacheKey, CacheStats, CachedCell, SolveCache};

use crate::http;

/// A [`SolveCache`] served over HTTP by `spp serve`.
pub struct HttpCache {
    /// `host:port` of the server.
    authority: String,
    /// Base URL as given (for error messages).
    url: String,
    readonly: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    rejected: AtomicU64,
}

impl HttpCache {
    /// Parse a base URL of the form `http://host:port` (a trailing slash
    /// is tolerated; any path prefix, scheme other than `http`, or
    /// missing port is an error — explicit beats guessed for a cache
    /// that silently degrades to misses on any mismatch).
    pub fn new(url: &str, readonly: bool) -> Result<HttpCache, CacheError> {
        let bad = |err: &str| CacheError::Io {
            path: url.to_string(),
            err: err.to_string(),
        };
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| bad("cache URL must start with http://"))?;
        let authority = rest.strip_suffix('/').unwrap_or(rest);
        if authority.is_empty() || authority.contains('/') {
            return Err(bad("cache URL must be http://host:port with no path"));
        }
        let (_, port) = authority
            .rsplit_once(':')
            .ok_or_else(|| bad("cache URL must name a port (http://host:port)"))?;
        if port.parse::<u16>().is_err() {
            return Err(bad("cache URL port is not a number"));
        }
        Ok(HttpCache {
            authority: authority.to_string(),
            url: url.to_string(),
            readonly,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// The base URL this client targets.
    pub fn url(&self) -> &str {
        &self.url
    }

    /// True iff `put` never writes.
    pub fn is_readonly(&self) -> bool {
        self.readonly
    }

    fn path_for(key: &CacheKey) -> String {
        let file_name = key.file_name();
        let stem = file_name.strip_suffix(".json").unwrap_or(&file_name);
        format!("/cache/{stem}")
    }
}

impl SolveCache for HttpCache {
    fn get(&self, key: &CacheKey) -> Option<CachedCell> {
        let miss = |rejected: bool| {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if rejected {
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
            None
        };
        let response = match http::roundtrip(&self.authority, "GET", &Self::path_for(key), "") {
            Ok(r) => r,
            Err(_) => return miss(false), // unreachable server = cold cache
        };
        if response.status != 200 {
            return miss(false);
        }
        match entry_parse(&response.body) {
            // Same rule as DiskCache: serve only when the *embedded* key
            // matches the request, so server confusion and fingerprint
            // collisions degrade to recomputation.
            Ok((entry_key, cell)) if entry_key == *key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cell)
            }
            _ => miss(true),
        }
    }

    fn put(&self, key: &CacheKey, cell: &CachedCell) -> Result<(), CacheError> {
        if self.readonly {
            return Ok(());
        }
        let body = entry_to_json(key, cell);
        let response = http::roundtrip(&self.authority, "PUT", &Self::path_for(key), &body)
            .map_err(|e| CacheError::Io {
                path: self.url.clone(),
                err: e.to_string(),
            })?;
        match response.status {
            204 | 200 => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            status => Err(CacheError::Io {
                path: self.url.clone(),
                err: format!("PUT rejected with HTTP {status}: {}", response.body.trim()),
            }),
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_host_port_only() {
        assert!(HttpCache::new("http://127.0.0.1:8080", false).is_ok());
        assert!(HttpCache::new("http://localhost:8080/", false).is_ok());
        for bad in [
            "127.0.0.1:8080",            // no scheme
            "https://127.0.0.1:8080",    // wrong scheme
            "http://127.0.0.1",          // no port
            "http://127.0.0.1:x",        // bad port
            "http://127.0.0.1:80/cache", // path prefix
            "http://",                   // empty authority
        ] {
            assert!(HttpCache::new(bad, false).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn unreachable_server_is_a_cold_cache_not_an_error() {
        // Reserved TEST-NET address: connect fails fast.
        let cache = HttpCache::new("http://127.0.0.1:1", false).unwrap();
        let key = CacheKey {
            digest: spp_core::InstanceDigest::of_canonical_json("x"),
            solver: "nfdh".into(),
            config_sig: "sig".into(),
        };
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().rejected, 0);
        // put, by contrast, surfaces the failure.
        let cell = CachedCell {
            status: spp_engine::CellStatus::Solved,
            makespan: 1.0,
            combined_lb: 1.0,
        };
        assert!(cache.put(&key, &cell).is_err());
        // …unless the client is read-only, where put is a contractual no-op.
        let ro = HttpCache::new("http://127.0.0.1:1", true).unwrap();
        assert!(ro.put(&key, &cell).is_ok());
        assert_eq!(ro.stats().writes, 0);
    }
}
