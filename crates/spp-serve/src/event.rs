//! Readiness-driven connection multiplexer for `spp serve`.
//!
//! One event-loop thread owns the listener and every parked keep-alive
//! connection through epoll, so thousands of idle clients cost zero pool
//! workers. The loop never parses bytes: when a parked socket becomes
//! readable it hands the connection to the worker pool (`EventShared`'s
//! ready queue), and the worker runs the exact same parse/handle/write
//! path as blocking mode. After a response the worker parks the
//! connection back here instead of holding its thread.
//!
//! The epoll surface is bound directly over the already-linked libc via
//! `extern "C"` — no new dependencies, Linux-only. On other platforms
//! `SUPPORTED` is false and the server falls back to blocking mode.
//!
//! Protocol between loop and workers:
//!
//! - Accepted sockets are set non-blocking and pushed straight to the
//!   ready queue: a worker probes once, and if no bytes are there yet
//!   (`EAGAIN`) it parks the connection, which registers it with epoll.
//! - Parked fds use `EPOLLONESHOT`: a readiness event disarms the fd,
//!   the loop deletes it from the interest set and moves the connection
//!   to the ready queue, so exactly one worker ever owns a socket.
//! - A connection parked with buffered pipelined bytes bypasses epoll
//!   entirely (the kernel cannot see userspace buffers): the loop
//!   requeues it at the ready-queue tail, which doubles as the fairness
//!   rotation for the per-turn request cap.
//! - Idle timeouts are the loop's job: each parked connection carries a
//!   deadline, `epoll_wait`'s timeout is the cheapest deadline (capped
//!   at [`IDLE_POLL_CAP`]), and expired connections are dropped — a
//!   parked socket has no unread data, so the close is a clean FIN.
//! - Shutdown wakes the loop through a self-pipe and the workers
//!   through a condvar broadcast; `next_ready` checks the flag first so
//!   workers exit promptly even with work still queued.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::http::RecvBuf;

/// Whether the event-driven I/O mode is available on this platform.
pub const SUPPORTED: bool = cfg!(target_os = "linux");

/// Upper bound on one `epoll_wait` sleep even with no parked deadlines,
/// so the loop re-checks shutdown and the park inbox defensively.
pub const IDLE_POLL_CAP: Duration = Duration::from_millis(500);

/// Readiness events drained per `epoll_wait` call.
#[cfg(target_os = "linux")]
const MAX_EVENTS: usize = 256;

/// Connections accepted per readiness turn before yielding back to the
/// loop, so an accept flood cannot starve parked-connection service.
#[cfg(target_os = "linux")]
const ACCEPT_BURST: usize = 1024;

/// Backoff after a failed `accept` (matches blocking mode's).
#[cfg(target_os = "linux")]
const ACCEPT_BACKOFF: Duration = Duration::from_millis(10);

/// A keep-alive connection travelling between the event loop and the
/// worker pool. Owns the socket and the connection-long receive buffer
/// so pipelined bytes survive a park/resume cycle.
pub struct EventConn {
    pub stream: TcpStream,
    pub buf: RecvBuf,
    /// Requests served on this connection so far (the keep-alive budget
    /// and `max_requests_per_connection` bookkeeping).
    pub served: u32,
}

impl EventConn {
    pub fn new(stream: TcpStream) -> EventConn {
        EventConn {
            stream,
            buf: RecvBuf::new(),
            served: 0,
        }
    }
}

/// Event-loop observability, surfaced through `/stats`.
#[derive(Debug, Default)]
pub struct EventCounters {
    /// Gauge: connections currently parked in the epoll interest set.
    pub parked_connections: AtomicU64,
    /// `epoll_wait` returns (readiness or timeout).
    pub wakeups: AtomicU64,
    /// `epoll_wait` returns that delivered at least one event.
    pub readiness_batches: AtomicU64,
    /// Worker boundary probes that found no bytes yet (connection
    /// parked instead of spinning).
    pub eagain_retries: AtomicU64,
    /// Parked connections closed by the idle-deadline scan.
    pub timer_expiries: AtomicU64,
}

#[derive(Debug, Clone, Copy)]
pub struct EventCountersSnapshot {
    pub parked_connections: u64,
    pub wakeups: u64,
    pub readiness_batches: u64,
    pub eagain_retries: u64,
    pub timer_expiries: u64,
}

impl EventCounters {
    pub fn snapshot(&self) -> EventCountersSnapshot {
        EventCountersSnapshot {
            parked_connections: self.parked_connections.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            readiness_batches: self.readiness_batches.load(Ordering::Relaxed),
            eagain_retries: self.eagain_retries.load(Ordering::Relaxed),
            timer_expiries: self.timer_expiries.load(Ordering::Relaxed),
        }
    }
}

/// Server-side callbacks the loop invokes so connection-economics
/// counters stay in `server::AtomicCounters` exactly as blocking mode
/// keeps them (the loop owns accept and final close in event mode).
pub struct EventHooks<'a> {
    /// A connection was accepted.
    pub on_accept: &'a (dyn Fn() + Sync),
    /// `accept()` failed with a non-retryable error.
    pub on_accept_error: &'a (dyn Fn() + Sync),
    /// A connection is being closed by the loop (idle expiry, register
    /// failure, or shutdown); the argument is its served-request count.
    pub on_retire: &'a (dyn Fn(u32) + Sync),
}

/// State shared between the event loop and the worker pool: the park
/// inbox (worker → loop), the ready queue (loop → worker), the shutdown
/// flag, and the self-pipe waker.
pub struct EventShared {
    inbox: Mutex<Vec<EventConn>>,
    ready: Mutex<VecDeque<EventConn>>,
    ready_cv: Condvar,
    shutdown: AtomicBool,
    waker: Waker,
    pub counters: EventCounters,
}

impl EventShared {
    pub fn new() -> std::io::Result<EventShared> {
        Ok(EventShared {
            inbox: Mutex::new(Vec::new()),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            waker: Waker::new()?,
            counters: EventCounters::default(),
        })
    }

    /// Worker → loop: return a connection to the multiplexer after a
    /// response (or after an empty boundary probe).
    pub fn park(&self, conn: EventConn) {
        self.inbox.lock().unwrap().push(conn);
        self.waker.wake();
    }

    /// Loop → worker: enqueue a connection with readable (or buffered)
    /// bytes for service.
    pub fn push_ready(&self, conn: EventConn) {
        self.ready.lock().unwrap().push_back(conn);
        self.ready_cv.notify_one();
    }

    /// Worker-side blocking pop. Returns `None` on shutdown — checked
    /// before the queue so workers exit promptly even with work queued.
    pub fn next_ready(&self) -> Option<EventConn> {
        let mut ready = self.ready.lock().unwrap();
        loop {
            if self.is_shutdown() {
                return None;
            }
            if let Some(conn) = ready.pop_front() {
                return Some(conn);
            }
            ready = self.ready_cv.wait(ready).unwrap();
        }
    }

    pub fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        self.ready_cv.notify_all();
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn drain_inbox(&self) -> Vec<EventConn> {
        std::mem::take(&mut *self.inbox.lock().unwrap())
    }

    fn drain_ready(&self) -> Vec<EventConn> {
        self.ready.lock().unwrap().drain(..).collect()
    }
}

// ---------------------------------------------------------------------------
// Linux: direct epoll/pipe bindings and the loop itself.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLONESHOT: u32 = 1 << 30;
    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;

    /// `struct epoll_event` is packed on x86_64 (a kernel ABI quirk)
    /// and naturally aligned everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// Self-pipe used to interrupt `epoll_wait` from worker threads (parks
/// and shutdown). A full pipe is fine: a failed write means a wake is
/// already pending, and the loop drains the whole inbox per iteration.
#[cfg(target_os = "linux")]
struct Waker {
    read_fd: std::os::raw::c_int,
    write_fd: std::os::raw::c_int,
}

#[cfg(target_os = "linux")]
impl Waker {
    fn new() -> std::io::Result<Waker> {
        let mut fds = [0 as std::os::raw::c_int; 2];
        // SAFETY: fds is a valid 2-element buffer for pipe2 to fill.
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        if rc != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    fn wake(&self) {
        let byte = [1u8];
        // SAFETY: write_fd is a live pipe fd owned by self; short or
        // failed writes (EAGAIN on a full pipe) are intentionally
        // ignored — a full pipe already guarantees a pending wake.
        unsafe {
            let _ = sys::write(self.write_fd, byte.as_ptr().cast(), 1);
        }
    }

    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: read_fd is a live non-blocking pipe fd owned by
            // self and buf is a valid writable buffer.
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: both fds are live and owned exclusively by self.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
struct Waker;

#[cfg(not(target_os = "linux"))]
impl Waker {
    fn new() -> std::io::Result<Waker> {
        Ok(Waker)
    }
    fn wake(&self) {}
}

/// Thin RAII wrapper over an epoll instance.
#[cfg(target_os = "linux")]
struct Poller {
    epfd: std::os::raw::c_int,
}

#[cfg(target_os = "linux")]
impl Poller {
    fn new() -> std::io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn add(&self, fd: std::os::raw::c_int, token: u64, events: u32) -> std::io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        // SAFETY: epfd and fd are live fds; ev is a valid epoll_event.
        let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) };
        if rc != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn delete(&self, fd: std::os::raw::c_int) {
        // SAFETY: epfd is live; a stale fd makes this a harmless ENOENT.
        // Linux < 2.6.9 required a non-null event for DEL; passing one
        // keeps this portable across everything that can run us.
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        unsafe {
            let _ = sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev);
        }
    }

    /// Wait for readiness, retrying on EINTR. `timeout` is rounded up
    /// to whole milliseconds so a 1ns residue cannot become a busy spin.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout: Duration) -> std::io::Result<usize> {
        let ms = timeout
            .as_millis()
            .saturating_add(u128::from(
                !timeout.subsec_nanos().is_multiple_of(1_000_000),
            ))
            .min(i32::MAX as u128) as i32;
        loop {
            // SAFETY: epfd is live and events is a valid writable slice
            // of epoll_event with the length we pass.
            let n =
                unsafe { sys::epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: epfd is live and owned exclusively by self.
        unsafe {
            sys::close(self.epfd);
        }
    }
}

/// Run the multiplexer until shutdown. Owns accept, parking, idle
/// deadlines, and final close of parked connections; everything with
/// readable bytes goes to the worker pool through `shared`.
#[cfg(target_os = "linux")]
pub fn run_event_loop(
    listener: &std::net::TcpListener,
    shared: &EventShared,
    idle_timeout: Duration,
    hooks: EventHooks<'_>,
) -> std::io::Result<()> {
    use std::collections::HashMap;
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    struct Parked {
        conn: EventConn,
        deadline: Instant,
    }

    const LISTENER_TOKEN: u64 = u64::MAX;
    const WAKER_TOKEN: u64 = u64::MAX - 1;

    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), LISTENER_TOKEN, sys::EPOLLIN)?;
    poller.add(shared.waker.read_fd, WAKER_TOKEN, sys::EPOLLIN)?;

    let mut parked: HashMap<u64, Parked> = HashMap::new();
    // Cheapest parked deadline, maintained incrementally: inserts can
    // only pull it earlier, so the full O(parked) rescan happens only
    // when it actually fires. Removals may leave it stale-early, which
    // costs at most one spurious timeout wakeup, never a late expiry.
    let mut next_deadline: Option<Instant> = None;
    let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];

    while !shared.is_shutdown() {
        // Park inbox: buffered pipelined bytes are invisible to the
        // kernel, so those connections requeue straight to the ready
        // tail; empty ones enter the epoll interest set.
        for conn in shared.drain_inbox() {
            if conn.buf.has_buffered() {
                shared.push_ready(conn);
                continue;
            }
            let fd = conn.stream.as_raw_fd();
            let token = fd as u64;
            let deadline = Instant::now() + idle_timeout;
            match poller.add(
                fd,
                token,
                sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLONESHOT,
            ) {
                Ok(()) => {
                    next_deadline = Some(next_deadline.map_or(deadline, |d| d.min(deadline)));
                    parked.insert(token, Parked { conn, deadline });
                }
                Err(_) => (hooks.on_retire)(conn.served),
            }
        }
        shared
            .counters
            .parked_connections
            .store(parked.len() as u64, Ordering::Relaxed);

        // Timer wheel, cheapest-deadline flavor: sleep until the
        // nearest parked deadline, capped defensively.
        let now = Instant::now();
        let timeout = match next_deadline {
            Some(d) => IDLE_POLL_CAP.min(d.saturating_duration_since(now)),
            None => IDLE_POLL_CAP,
        };

        let n = poller.wait(&mut events, timeout)?;
        shared.counters.wakeups.fetch_add(1, Ordering::Relaxed);
        if n > 0 {
            shared
                .counters
                .readiness_batches
                .fetch_add(1, Ordering::Relaxed);
        }

        for ev in &events[..n] {
            let token = ev.data; // copy out of the (packed) event
            match token {
                LISTENER_TOKEN => {
                    for _ in 0..ACCEPT_BURST {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                (hooks.on_accept)();
                                // Non-blocking so the worker's boundary
                                // probe parks instead of blocking.
                                let _ = stream.set_nonblocking(true);
                                shared.push_ready(EventConn::new(stream));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                (hooks.on_accept_error)();
                                // The listener stays level-triggered
                                // readable while accept fails (fd
                                // exhaustion): without a backoff the
                                // loop would spin hot on it.
                                std::thread::sleep(ACCEPT_BACKOFF);
                                break;
                            }
                        }
                    }
                }
                WAKER_TOKEN => shared.waker.drain(),
                token => {
                    // EPOLLONESHOT already disarmed the fd; deleting it
                    // keeps the interest set in lockstep with `parked`
                    // so re-parks can always use CTL_ADD.
                    if let Some(p) = parked.remove(&token) {
                        poller.delete(p.conn.stream.as_raw_fd());
                        // Readable, error, and hangup all wake a worker:
                        // the worker's read observes EOF/reset and runs
                        // the normal close path with full bookkeeping.
                        shared.push_ready(p.conn);
                    }
                }
            }
        }

        // Expire idle connections — only when the cached cheapest
        // deadline has actually fired. A parked socket has no unread
        // bytes, so dropping it sends a clean FIN — exactly the
        // blocking-mode idle-timeout close the roundtrip tests assert
        // on.
        let now = Instant::now();
        if next_deadline.is_some_and(|d| d <= now) {
            let expired: Vec<u64> = parked
                .iter()
                .filter(|(_, p)| p.deadline <= now)
                .map(|(t, _)| *t)
                .collect();
            for token in expired {
                if let Some(p) = parked.remove(&token) {
                    poller.delete(p.conn.stream.as_raw_fd());
                    shared
                        .counters
                        .timer_expiries
                        .fetch_add(1, Ordering::Relaxed);
                    (hooks.on_retire)(p.conn.served);
                }
            }
            next_deadline = parked.values().map(|p| p.deadline).min();
        }
    }

    // Shutdown: retire everything still owned by the multiplexer so
    // max_requests_per_connection stays truthful, then make sure no
    // worker is left asleep on the condvar.
    for (_, p) in parked.drain() {
        (hooks.on_retire)(p.conn.served);
    }
    for conn in shared.drain_inbox() {
        (hooks.on_retire)(conn.served);
    }
    for conn in shared.drain_ready() {
        (hooks.on_retire)(conn.served);
    }
    shared
        .counters
        .parked_connections
        .store(0, Ordering::Relaxed);
    shared.ready_cv.notify_all();
    Ok(())
}

/// Non-Linux stub; `IoMode::resolve` never selects event mode here, so
/// this only exists to keep call sites compiling.
#[cfg(not(target_os = "linux"))]
pub fn run_event_loop(
    _listener: &std::net::TcpListener,
    _shared: &EventShared,
    _idle_timeout: Duration,
    _hooks: EventHooks<'_>,
) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "event-driven io requires linux epoll",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_ready_returns_none_after_shutdown() {
        let shared = EventShared::new().unwrap();
        shared.push_ready(EventConn::new(connect_pair().0));
        shared.initiate_shutdown();
        // Shutdown wins over queued work: workers must exit promptly.
        assert!(shared.next_ready().is_none());
    }

    #[test]
    fn ready_queue_preserves_fifo_order() {
        let shared = EventShared::new().unwrap();
        let (a, _ka) = connect_pair();
        let (b, _kb) = connect_pair();
        let mut first = EventConn::new(a);
        first.served = 1;
        let mut second = EventConn::new(b);
        second.served = 2;
        shared.push_ready(first);
        shared.push_ready(second);
        assert_eq!(shared.next_ready().unwrap().served, 1);
        assert_eq!(shared.next_ready().unwrap().served, 2);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn poller_sees_listener_readiness_and_waker_wakes() {
        use std::os::unix::io::AsRawFd;

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, sys::EPOLLIN).unwrap();

        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 8];
        // Nothing pending yet: a short wait times out empty.
        let n = poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0);

        let _client = TcpStream::connect(addr).unwrap();
        let n = poller.wait(&mut events, Duration::from_secs(5)).unwrap();
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 7);

        // A waker write must interrupt a long wait promptly.
        let waker = Waker::new().unwrap();
        poller.add(waker.read_fd, 9, sys::EPOLLIN).unwrap();
        let started = std::time::Instant::now();
        waker.wake();
        let n = poller.wait(&mut events, Duration::from_secs(5)).unwrap();
        assert!(n >= 1);
        assert!(started.elapsed() < Duration::from_secs(1));
        waker.drain();
    }

    /// A connected socket pair so EventConn tests hold real streams.
    fn connect_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }
}
