//! Minimal HTTP/1.1 message layer over `std::net` — just enough protocol
//! for the cache server and its clients, hand rolled because the
//! workspace's allowed dependency set contains no HTTP crate (the same
//! constraint that produced the hand-rolled JSON layer in `spp-core`).
//!
//! Scope (deliberate): one request per connection (`Connection: close`),
//! bodies framed by `Content-Length` only (no chunked encoding), ASCII
//! request targets, and hard limits on header and body sizes so a
//! misbehaving peer cannot balloon memory. Everything outside that scope
//! is a structured [`HttpError`] that the server maps to a 4xx response
//! instead of a hang or a panic.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Longest accepted request line or single header line, in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted per message.
pub const MAX_HEADERS: usize = 64;
/// Per-connection socket timeout: a stalled peer frees its worker.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Protocol-level failures while reading a request. Each maps to one
/// well-defined HTTP status so handlers never guess.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line / header syntax → 400.
    Bad(String),
    /// Body advertised or sent beyond the server's limit → 413.
    TooLarge { limit: usize },
    /// PUT/POST without a `Content-Length` → 411.
    LengthRequired,
    /// Socket failure or peer disconnect mid-message (no response owed).
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Bad(msg) => write!(f, "bad request: {msg}"),
            HttpError::TooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            HttpError::LengthRequired => write!(f, "Content-Length header required"),
            HttpError::Io(msg) => write!(f, "connection error: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request: method, split target, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Target path without the query string, e.g. `/cache/abc`.
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    pub body: String,
}

impl Request {
    /// Decode the query string as `key=value` pairs in order. No
    /// percent-decoding: every value this API accepts (registry names,
    /// numbers, booleans) is plain ASCII, and a stray `%` simply fails
    /// the typed parse downstream with a clear message.
    pub fn query_pairs(&self) -> Vec<(&str, &str)> {
        self.query
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
            .collect()
    }
}

fn io_error(e: std::io::Error) -> HttpError {
    HttpError::Io(e.to_string())
}

/// Read one CRLF (or bare-LF) terminated line, bounded by
/// [`MAX_HEADER_LINE`].
fn read_line(reader: &mut BufReader<&TcpStream>) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break, // EOF
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_HEADER_LINE {
                    return Err(HttpError::Bad("header line too long".into()));
                }
            }
            Err(e) => return Err(io_error(e)),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Bad("non-UTF-8 header bytes".into()))
}

/// Read and parse one request from the stream, enforcing `max_body`.
pub fn read_request(stream: &TcpStream, max_body: usize) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(io_error)?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(io_error)?;
    let mut reader = BufReader::new(stream);

    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(HttpError::Bad(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version {version:?}")));
    }

    let mut content_length: Option<usize> = None;
    let mut saw_header_end = false;
    for _ in 0..=MAX_HEADERS {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            saw_header_end = true;
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Bad(format!("malformed header {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Bad(format!("bad Content-Length {value:?}")))?;
            content_length = Some(n);
        }
        // Every other header (Host, User-Agent, Accept, …) is irrelevant
        // to this API and skipped.
    }
    if !saw_header_end {
        // Exiting by loop exhaustion would leave unread header bytes that
        // a Content-Length body read would then misinterpret — reject.
        return Err(HttpError::Bad(format!("more than {MAX_HEADERS} headers")));
    }

    let needs_body = matches!(method, "PUT" | "POST");
    let body = match content_length {
        None if needs_body => return Err(HttpError::LengthRequired),
        None | Some(0) => String::new(),
        Some(n) if n > max_body => return Err(HttpError::TooLarge { limit: max_body }),
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf).map_err(io_error)?;
            String::from_utf8(buf).map_err(|_| HttpError::Bad("non-UTF-8 body".into()))?
        }
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        body,
    })
}

/// Canonical reason phrase for the status codes this API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write one complete response and close the write side. Every response
/// carries `Connection: close` — one request per connection keeps the
/// worker-pool accounting exact (a worker is busy iff it is serving one
/// request).
pub fn write_response(
    stream: &TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> Result<(), HttpError> {
    let mut stream = stream;
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(io_error)?;
    stream.write_all(body.as_bytes()).map_err(io_error)?;
    stream.flush().map_err(io_error)
}

/// A parsed response on the client side.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: String,
}

/// Parse a base URL of the form `http://host:port` into its authority.
/// A trailing slash is tolerated; any path prefix, scheme other than
/// `http`, or missing port is an error — explicit beats guessed for
/// clients that would otherwise silently degrade on a mismatch. Shared
/// by every client of this crate (`HttpCache`, `RemoteLease`).
pub fn parse_base_url(url: &str) -> Result<String, String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or("URL must start with http://")?;
    let authority = rest.strip_suffix('/').unwrap_or(rest);
    if authority.is_empty() || authority.contains('/') {
        return Err("URL must be http://host:port with no path".into());
    }
    let (_, port) = authority
        .rsplit_once(':')
        .ok_or("URL must name a port (http://host:port)")?;
    if port.parse::<u16>().is_err() {
        return Err("URL port is not a number".into());
    }
    Ok(authority.to_string())
}

/// Delay between the two attempts of [`roundtrip_retry`].
pub const RETRY_DELAY: Duration = Duration::from_millis(50);

/// [`roundtrip`] with one bounded retry: any failure of the first
/// attempt — refused/reset connection, timeout, or a response cut off
/// mid-frame — sleeps [`RETRY_DELAY`] and tries once more before the
/// error stands. One retry rides out the transient blips of a busy or
/// restarting server; keeping it *bounded* keeps a hard failure loud
/// (an unreachable cache degrades to cold-cache misses, an unreachable
/// dispatcher errors) instead of becoming an unbounded hang.
pub fn roundtrip_retry(
    authority: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
) -> Result<Response, HttpError> {
    spp_par::retry(2, RETRY_DELAY, |_| {
        roundtrip(authority, method, path_and_query, body)
    })
}

/// Perform one blocking request against `authority` (a `host:port`
/// string) and read the full response. One connection per call — the
/// server closes after responding anyway.
pub fn roundtrip(
    authority: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
) -> Result<Response, HttpError> {
    let stream = TcpStream::connect(authority).map_err(io_error)?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(io_error)?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(io_error)?;
    {
        let mut w = &stream;
        let head = format!(
            "{method} {path_and_query} HTTP/1.1\r\nHost: {authority}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        w.write_all(head.as_bytes()).map_err(io_error)?;
        w.write_all(body.as_bytes()).map_err(io_error)?;
        w.flush().map_err(io_error)?;
    }

    let mut reader = BufReader::new(&stream);
    let status_line = read_line(&mut reader)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Bad(format!("malformed status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    for _ in 0..=MAX_HEADERS {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf).map_err(io_error)?;
            String::from_utf8(buf).map_err(|_| HttpError::Bad("non-UTF-8 body".into()))?
        }
        // Connection: close framing — read until EOF.
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf).map_err(io_error)?;
            buf
        }
    };
    Ok(Response { status, body })
}
