//! Minimal HTTP/1.1 message layer over `std::net` — just enough protocol
//! for the cache server and its clients, hand rolled because the
//! workspace's allowed dependency set contains no HTTP crate (the same
//! constraint that produced the hand-rolled JSON layer in `spp-core`).
//!
//! Scope (deliberate): persistent connections with `Connection`
//! semantics per RFC 9112 (HTTP/1.1 defaults to keep-alive, HTTP/1.0 to
//! close), bodies framed by `Content-Length` only (no chunked encoding),
//! ASCII request targets, and hard limits on header and body sizes so a
//! misbehaving peer cannot balloon memory. Everything outside that scope
//! is a structured [`HttpError`] that the server maps to a 4xx response
//! instead of a hang or a panic.
//!
//! ## Connection reuse
//!
//! The server side serves many requests per accepted socket (the loops
//! live in `server.rs` and `event.rs`); this module's job is to keep
//! the *framing* honest across requests: [`read_request`] reads through
//! the connection's long-lived [`RecvBuf`] — an owned buffer that
//! belongs to the connection, not to any one read call, so read-ahead
//! bytes of the next pipelined request survive even when the connection
//! is parked in the event loop and resumed on a different worker
//! thread. It distinguishes a clean close at a request boundary
//! ([`HttpError::Closed`]) from an idle boundary timeout
//! ([`HttpError::Idle`]) from a slow-trickled message that blew its
//! deadline ([`HttpError::Deadline`], the slowloris guard) from a
//! genuinely broken or malformed exchange.
//!
//! The client side keeps one open [`Conn`] per `(thread, authority)` in
//! a thread-local pool ([`pooled_roundtrip`]), reconnecting
//! transparently when a pooled socket has gone stale — the server may
//! have closed it for idleness or budget exhaustion between our
//! requests, which is an expected race, not an error. Only a *reused*
//! socket earns that silent reconnect; a failure on a fresh connection
//! propagates, so a dead server still fails loudly.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Longest accepted request line or single header line, in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted per message.
pub const MAX_HEADERS: usize = 64;
/// Mid-message socket timeout: a peer that stalls *inside* a request or
/// response frees its worker. Idle time *between* requests is governed
/// separately by the server's idle timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Protocol-level failures while reading a message. Each maps to one
/// well-defined HTTP status so handlers never guess.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line / header syntax → 400.
    Bad(String),
    /// Body advertised or sent beyond the server's limit → 413.
    TooLarge { limit: usize },
    /// PUT/POST without a `Content-Length` → 411.
    LengthRequired,
    /// Socket failure or peer disconnect mid-message (no response owed).
    Io(String),
    /// Peer closed cleanly at a message boundary — the normal end of a
    /// keep-alive conversation, not a failure.
    Closed,
    /// Zero bytes arrived within the read timeout at a message boundary —
    /// the connection is idle, not broken. The server uses this to slice
    /// its idle wait so shutdown stays prompt; the event-loop worker uses
    /// it as the signal to park the connection back into epoll.
    Idle,
    /// The message started but did not finish within the caller's
    /// whole-message budget — a byte-at-a-time trickler (slowloris)
    /// trying to pin a worker. Maps to 408.
    Deadline,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Bad(msg) => write!(f, "bad request: {msg}"),
            HttpError::TooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            HttpError::LengthRequired => write!(f, "Content-Length header required"),
            HttpError::Io(msg) => write!(f, "connection error: {msg}"),
            HttpError::Closed => write!(f, "connection closed by peer"),
            HttpError::Idle => write!(f, "connection idle past read timeout"),
            HttpError::Deadline => write!(f, "message not completed within its deadline"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request: method, split target, raw body, and whether the
/// client asked this to be the connection's last exchange.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Target path without the query string, e.g. `/cache/abc`.
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    pub body: String,
    /// Raw `Authorization` header value, when the client sent one. The
    /// server's auth gate parses the `Bearer <token>` scheme out of it;
    /// this layer only transports it.
    pub authorization: Option<String>,
    /// `true` when the connection must close after this exchange:
    /// `Connection: close`, or HTTP/1.0 without `Connection: keep-alive`.
    pub close: bool,
}

impl Request {
    /// Decode the query string as `key=value` pairs in order. No
    /// percent-decoding: every value this API accepts (registry names,
    /// numbers, booleans) is plain ASCII, and a stray `%` simply fails
    /// the typed parse downstream with a clear message.
    pub fn query_pairs(&self) -> Vec<(&str, &str)> {
        self.query
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
            .collect()
    }
}

fn io_error(e: std::io::Error) -> HttpError {
    HttpError::Io(e.to_string())
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Bytes read per socket refill of a [`RecvBuf`].
const RECV_CHUNK: usize = 8 * 1024;

/// A connection's owned receive buffer: read-ahead bytes (the start of a
/// pipelined next request, a half-delivered message) live here, not in a
/// stack-local reader, so they survive the connection being parked in
/// the event loop and resumed on a different worker thread. One
/// `RecvBuf` per connection, for the connection's whole life.
#[derive(Debug, Default)]
pub struct RecvBuf {
    data: Vec<u8>,
    start: usize,
    end: usize,
}

impl RecvBuf {
    pub fn new() -> RecvBuf {
        RecvBuf::default()
    }

    /// Whether undelivered bytes are buffered — an event-loop connection
    /// parked with buffered bytes must be requeued immediately (epoll
    /// only sees kernel-side readiness, never userspace buffers).
    pub fn has_buffered(&self) -> bool {
        self.start < self.end
    }

    fn pop(&mut self) -> Option<u8> {
        if self.start < self.end {
            let b = self.data[self.start];
            self.start += 1;
            Some(b)
        } else {
            None
        }
    }

    /// Move up to `out.len()` buffered bytes into `out`.
    fn take(&mut self, out: &mut [u8]) -> usize {
        let n = out.len().min(self.end - self.start);
        out[..n].copy_from_slice(&self.data[self.start..self.start + n]);
        self.start += n;
        n
    }

    /// Refill from the socket (only legal when empty). `Ok(0)` is EOF.
    fn fill(&mut self, stream: &TcpStream) -> std::io::Result<usize> {
        debug_assert!(!self.has_buffered());
        if self.data.is_empty() {
            self.data = vec![0u8; RECV_CHUNK];
        }
        self.start = 0;
        self.end = 0;
        let n = (&mut &*stream).read(&mut self.data)?;
        self.end = n;
        Ok(n)
    }
}

/// One in-flight message read: tracks whether the message has started
/// (`live`), arms the whole-message deadline on the first byte, and —
/// for event-mode boundary probes — flips the socket from non-blocking
/// back to blocking once a message is actually arriving, so the rest of
/// the parse reads like the blocking path.
struct MsgIn<'a> {
    stream: &'a TcpStream,
    buf: &'a mut RecvBuf,
    /// Socket is currently non-blocking (an event-loop boundary probe);
    /// cleared when the first byte of the message arrives.
    nonblocking: bool,
    /// Whole-message time budget, armed at the first byte.
    budget: Option<Duration>,
    deadline: Option<Instant>,
    live: bool,
}

impl<'a> MsgIn<'a> {
    fn new(
        stream: &'a TcpStream,
        buf: &'a mut RecvBuf,
        budget: Option<Duration>,
        nonblocking: bool,
    ) -> MsgIn<'a> {
        MsgIn {
            stream,
            buf,
            nonblocking,
            budget,
            deadline: None,
            live: false,
        }
    }

    /// The first byte of the message has arrived: the conversation is
    /// live, stalls are now errors, and the deadline clock starts.
    fn mark_live(&mut self) -> Result<(), HttpError> {
        if self.live {
            return Ok(());
        }
        self.live = true;
        if self.nonblocking {
            self.stream.set_nonblocking(false).map_err(io_error)?;
            self.nonblocking = false;
        }
        if let Some(budget) = self.budget {
            self.deadline = Some(Instant::now() + budget);
        }
        Ok(())
    }

    /// Bound the next blocking read by [`IO_TIMEOUT`] and whatever is
    /// left of the message deadline.
    fn arm_read_timeout(&mut self) -> Result<(), HttpError> {
        if !self.live {
            // At a boundary the caller owns the timeout: the server's
            // sliced idle wait, the client's IO_TIMEOUT, or a
            // non-blocking probe that returns instantly.
            return Ok(());
        }
        let mut timeout = IO_TIMEOUT;
        if let Some(deadline) = self.deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(HttpError::Deadline);
            }
            timeout = timeout.min(remaining);
        }
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(io_error)?;
        Ok(())
    }

    fn map_read_timeout(&self) -> HttpError {
        if !self.live {
            return HttpError::Idle;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return HttpError::Deadline;
        }
        HttpError::Io("read timed out mid-message".into())
    }

    /// Next message byte, refilling the buffer from the socket as
    /// needed. `Ok(None)` is EOF.
    fn next_byte(&mut self) -> Result<Option<u8>, HttpError> {
        loop {
            if let Some(b) = self.buf.pop() {
                self.mark_live()?;
                return Ok(Some(b));
            }
            self.arm_read_timeout()?;
            match self.buf.fill(self.stream) {
                Ok(0) => return Ok(None),
                Ok(_) => {}
                Err(e) if is_timeout(&e) => return Err(self.map_read_timeout()),
                Err(e) => return Err(io_error(e)),
            }
        }
    }

    /// Bulk read for bodies: buffered bytes first, then straight from
    /// the socket (no intermediate copy). `Ok(0)` is EOF.
    fn read_into(&mut self, out: &mut [u8]) -> Result<usize, HttpError> {
        let n = self.buf.take(out);
        if n > 0 {
            self.mark_live()?;
            return Ok(n);
        }
        self.arm_read_timeout()?;
        match (&mut &*self.stream).read(out) {
            Ok(0) => Ok(0),
            Ok(n) => {
                self.mark_live()?;
                Ok(n)
            }
            Err(e) if is_timeout(&e) => Err(self.map_read_timeout()),
            Err(e) => Err(io_error(e)),
        }
    }
}

/// Read one CRLF (or bare-LF) terminated line, bounded by
/// [`MAX_HEADER_LINE`]. With `at_boundary`, zero bytes before the first
/// byte of the line is reported as [`HttpError::Closed`] (EOF) or
/// [`HttpError::Idle`] (timeout / nothing readable) — a clean end of a
/// persistent conversation. Once any byte has arrived, EOF or timeout is
/// a truncated message and an error.
fn read_line(msg: &mut MsgIn<'_>, at_boundary: bool) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        match msg.next_byte()? {
            Some(b'\n') => break,
            Some(b) => {
                line.push(b);
                if line.len() > MAX_HEADER_LINE {
                    return Err(HttpError::Bad("header line too long".into()));
                }
            }
            None => {
                if at_boundary && line.is_empty() {
                    return Err(HttpError::Closed);
                }
                return Err(HttpError::Io("connection closed mid-line".into()));
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Bad("non-UTF-8 header bytes".into()))
}

/// Read exactly `n` body bytes through `msg` into a UTF-8 string.
fn read_body(msg: &mut MsgIn<'_>, n: usize) -> Result<String, HttpError> {
    let mut raw = vec![0u8; n];
    let mut got = 0;
    while got < n {
        match msg.read_into(&mut raw[got..])? {
            0 => return Err(HttpError::Io("connection closed mid-body".into())),
            k => got += k,
        }
    }
    String::from_utf8(raw).map_err(|_| HttpError::Bad("non-UTF-8 body".into()))
}

/// Whether a message with `version` and an optional `Connection` header
/// value ends the connection after this exchange. HTTP/1.1 defaults to
/// keep-alive, HTTP/1.0 to close; an explicit `close` token always wins.
fn connection_closes(version: &str, connection: Option<&str>) -> bool {
    let has = |token: &str| {
        connection.is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(token)))
    };
    if has("close") {
        return true;
    }
    if version == "HTTP/1.0" {
        return !has("keep-alive");
    }
    false
}

/// Read and parse one request from a connection's long-lived
/// [`RecvBuf`], enforcing `max_body`.
///
/// At the message boundary, the caller owns the wait: whatever read
/// timeout is set governs the idle wait for the request line
/// ([`HttpError::Idle`] on expiry), and with `nonblocking` (an
/// event-loop boundary probe) a socket with nothing readable returns
/// `Idle` immediately instead of blocking — the worker's signal to park
/// the connection back into epoll. Once the first byte arrives the
/// conversation is live: the socket is switched back to blocking (if it
/// wasn't), every read is bounded by [`IO_TIMEOUT`], and with `budget`
/// set the *whole message* — request line, headers, and body — must
/// complete within it or the read fails with [`HttpError::Deadline`]
/// (the slowloris guard: a byte-at-a-time client cannot pin a worker
/// past the budget, because trickling does not reset the clock).
pub fn read_request(
    stream: &TcpStream,
    buf: &mut RecvBuf,
    max_body: usize,
    budget: Option<Duration>,
    nonblocking: bool,
) -> Result<Request, HttpError> {
    let mut msg = MsgIn::new(stream, buf, budget, nonblocking);
    let request_line = read_line(&mut msg, true)?;

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(HttpError::Bad(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version {version:?}")));
    }

    let mut content_length: Option<usize> = None;
    let mut connection: Option<String> = None;
    let mut authorization: Option<String> = None;
    let mut saw_header_end = false;
    for _ in 0..=MAX_HEADERS {
        let line = read_line(&mut msg, false)?;
        if line.is_empty() {
            saw_header_end = true;
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Bad(format!("malformed header {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            // RFC 9112 §6.3: conflicting Content-Length values are a
            // request-smuggling vector — a front proxy and this server
            // picking different framings would let one request hide
            // inside another's body. A repeated header is rejected
            // outright (even if the values agree: a legitimate client
            // has no reason to send it twice); a comma-separated list
            // is accepted only when every member is the same value.
            if content_length.is_some() {
                return Err(HttpError::Bad("duplicate Content-Length header".into()));
            }
            content_length = Some(parse_content_length(value)?);
        } else if name.eq_ignore_ascii_case("connection") {
            connection = Some(value.trim().to_string());
        } else if name.eq_ignore_ascii_case("authorization") {
            authorization = Some(value.trim().to_string());
        }
        // Every other header (Host, User-Agent, Accept, …) is irrelevant
        // to this API and skipped.
    }
    if !saw_header_end {
        // Exiting by loop exhaustion would leave unread header bytes that
        // a Content-Length body read would then misinterpret — reject.
        return Err(HttpError::Bad(format!("more than {MAX_HEADERS} headers")));
    }

    let needs_body = matches!(method, "PUT" | "POST");
    let body = match content_length {
        None if needs_body => return Err(HttpError::LengthRequired),
        None | Some(0) => String::new(),
        Some(n) if n > max_body => return Err(HttpError::TooLarge { limit: max_body }),
        Some(n) => read_body(&mut msg, n)?,
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        body,
        authorization,
        close: connection_closes(version, connection.as_deref()),
    })
}

/// Parse one `Content-Length` header value. A comma-separated list is
/// the header-recombination form some intermediaries produce from a
/// repeated field; RFC 9112 §6.3 permits recovering from it only when
/// every member is the same valid value — anything else is rejected so
/// two hops can never disagree on where a body ends.
fn parse_content_length(value: &str) -> Result<usize, HttpError> {
    let bad = || HttpError::Bad(format!("bad Content-Length {value:?}"));
    let mut parsed: Option<usize> = None;
    for member in value.split(',') {
        let n: usize = member.trim().parse().map_err(|_| bad())?;
        match parsed {
            None => parsed = Some(n),
            Some(first) if first == n => {}
            Some(_) => {
                return Err(HttpError::Bad(format!(
                    "conflicting Content-Length values {value:?}"
                )))
            }
        }
    }
    parsed.ok_or_else(bad)
}

/// Canonical reason phrase for the status codes this API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one complete `Content-Length`-framed response. With `close`
/// the response announces `Connection: close` and the caller is expected
/// to drop the socket; otherwise the connection stays open for the next
/// request (HTTP/1.1 default — no header needed, but an explicit
/// `keep-alive` is written so 1.0-era intermediaries behave).
pub fn write_response_conn(
    stream: &TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> Result<(), HttpError> {
    write_response_headers(stream, status, content_type, body, close, &[])
}

/// [`write_response_conn`] with additional response headers — the shape
/// the server uses for statuses that carry mandatory metadata (401's
/// `WWW-Authenticate: Bearer`). Header names and values are written
/// verbatim; callers pass only fixed ASCII strings.
pub fn write_response_headers(
    stream: &TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
    extra: &[(&str, &str)],
) -> Result<(), HttpError> {
    let mut stream = stream;
    let connection = if close { "close" } else { "keep-alive" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).map_err(io_error)?;
    stream.write_all(body.as_bytes()).map_err(io_error)?;
    stream.flush().map_err(io_error)
}

/// [`write_response_conn`] with `Connection: close` — the one-shot shape
/// kept for single-response stubs (tests) and terminal error replies.
pub fn write_response(
    stream: &TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> Result<(), HttpError> {
    write_response_conn(stream, status, content_type, body, true)
}

/// A parsed response on the client side.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: String,
    /// Whether the server ends the connection after this response; a
    /// pooled connection seeing this must not be reused.
    pub close: bool,
}

/// Read one response from a connection's [`RecvBuf`]. Bodies are framed
/// by `Content-Length`; a response without one is legal only on a
/// closing connection (read-until-EOF), which this layer's own server
/// never produces but foreign/stub servers may.
pub fn read_response(stream: &TcpStream, buf: &mut RecvBuf) -> Result<Response, HttpError> {
    let mut msg = MsgIn::new(stream, buf, None, false);
    let status_line = read_line(&mut msg, true)?;
    let mut head = status_line.split(' ');
    let version = head.next().unwrap_or("");
    let status: u16 = head
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Bad(format!("malformed status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    let mut connection: Option<String> = None;
    for _ in 0..=MAX_HEADERS {
        let line = read_line(&mut msg, false)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_string());
            }
        }
    }
    let mut close = connection_closes(version, connection.as_deref());
    let body = match content_length {
        Some(n) => read_body(&mut msg, n)?,
        // No Content-Length: the only sound framing left is till-EOF,
        // after which the connection is necessarily done.
        None => {
            close = true;
            let mut raw = Vec::new();
            loop {
                let mut chunk = [0u8; 4096];
                match msg.read_into(&mut chunk)? {
                    0 => break,
                    k => raw.extend_from_slice(&chunk[..k]),
                }
            }
            String::from_utf8(raw).map_err(|_| HttpError::Bad("non-UTF-8 body".into()))?
        }
    };
    Ok(Response {
        status,
        body,
        close,
    })
}

fn write_request(
    stream: &TcpStream,
    authority: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
    close: bool,
    token: Option<&str>,
) -> Result<(), HttpError> {
    let mut w = stream;
    let connection = if close { "Connection: close\r\n" } else { "" };
    let auth = match token {
        Some(t) => format!("Authorization: Bearer {t}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "{method} {path_and_query} HTTP/1.1\r\nHost: {authority}\r\nContent-Length: {}\r\n{auth}{connection}\r\n",
        body.len()
    );
    w.write_all(head.as_bytes()).map_err(io_error)?;
    w.write_all(body.as_bytes()).map_err(io_error)?;
    w.flush().map_err(io_error)
}

/// Parse a base URL of the form `http://host:port` into its authority.
/// A trailing slash is tolerated; any path prefix, scheme other than
/// `http`, or missing port is an error — explicit beats guessed for
/// clients that would otherwise silently degrade on a mismatch. Shared
/// by every client of this crate (`HttpCache`, `RemoteLease`).
pub fn parse_base_url(url: &str) -> Result<String, String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or("URL must start with http://")?;
    let authority = rest.strip_suffix('/').unwrap_or(rest);
    if authority.is_empty() || authority.contains('/') {
        return Err("URL must be http://host:port with no path".into());
    }
    let (_, port) = authority
        .rsplit_once(':')
        .ok_or("URL must name a port (http://host:port)")?;
    if port.parse::<u16>().is_err() {
        return Err("URL port is not a number".into());
    }
    Ok(authority.to_string())
}

/// One persistent client connection to an authority. Owns the socket;
/// [`Conn::call`] runs a full request/response exchange on it. Any error
/// from `call` means the connection is no longer usable and must be
/// dropped — response framing cannot be resynchronized after a partial
/// exchange.
pub struct Conn {
    authority: String,
    stream: TcpStream,
    buf: RecvBuf,
    requests: u64,
}

impl Conn {
    pub fn connect(authority: &str) -> Result<Conn, HttpError> {
        let stream = TcpStream::connect(authority).map_err(io_error)?;
        stream
            .set_read_timeout(Some(IO_TIMEOUT))
            .map_err(io_error)?;
        stream
            .set_write_timeout(Some(IO_TIMEOUT))
            .map_err(io_error)?;
        // Small request/response exchanges: waiting for coalescing only
        // adds latency. Best effort — some test doubles don't care.
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            authority: authority.to_string(),
            stream,
            buf: RecvBuf::new(),
            requests: 0,
        })
    }

    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// Requests completed on this connection.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// One request/response exchange, keep-alive framing. The
    /// connection-long [`RecvBuf`] keeps framing honest even if a
    /// server were to send ahead of our next request.
    pub fn call(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: &str,
    ) -> Result<Response, HttpError> {
        self.call_auth(method, path_and_query, body, None)
    }

    /// [`Conn::call`] with a bearer token attached as
    /// `Authorization: Bearer <token>`.
    pub fn call_auth(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: &str,
        token: Option<&str>,
    ) -> Result<Response, HttpError> {
        write_request(
            &self.stream,
            &self.authority,
            method,
            path_and_query,
            body,
            false,
            token,
        )?;
        let response = read_response(&self.stream, &mut self.buf)?;
        self.requests += 1;
        Ok(response)
    }

    /// Surrender the raw socket (tests observe the server's close
    /// behavior — EOF vs reset — directly on it).
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}

thread_local! {
    /// One pooled connection per authority per thread. Entries are taken
    /// out for the duration of a call (never borrowed across blocking
    /// I/O) and returned only when the response allows reuse.
    static POOL: RefCell<HashMap<String, Conn>> = RefCell::new(HashMap::new());
}

fn pool_take(authority: &str) -> Option<Conn> {
    POOL.with(|p| p.borrow_mut().remove(authority))
}

fn pool_put(conn: Conn) {
    POOL.with(|p| {
        p.borrow_mut().insert(conn.authority.clone(), conn);
    });
}

/// Drop this thread's pooled connection to `authority`, if any. Tests
/// use this to force a fresh connection; production code never needs it.
pub fn pool_evict(authority: &str) {
    POOL.with(|p| {
        p.borrow_mut().remove(authority);
    });
}

/// Perform one request over this thread's pooled connection to
/// `authority`, connecting (and pooling) on first use.
///
/// A failure on a *reused* socket is retried once on a fresh connection
/// without surfacing: the server closing a pooled connection between our
/// requests (idle timeout, request budget) is an expected race. A
/// failure on a fresh connection propagates — that is a real error.
/// Note the retry resends the request, so a reused socket that died
/// after the server acted but before we read the response can execute
/// the request twice; every endpoint behind this client tolerates that
/// (cache puts are idempotent, an orphaned work lease is requeued by the
/// dispatcher — see `work_client.rs`).
pub fn pooled_roundtrip(
    authority: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
) -> Result<Response, HttpError> {
    pooled_roundtrip_auth(authority, method, path_and_query, body, None)
}

/// [`pooled_roundtrip`] with a bearer token attached to the request.
pub fn pooled_roundtrip_auth(
    authority: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
    token: Option<&str>,
) -> Result<Response, HttpError> {
    if let Some(mut conn) = pool_take(authority) {
        if let Ok(response) = conn.call_auth(method, path_and_query, body, token) {
            if !response.close {
                pool_put(conn);
            }
            return Ok(response);
        }
        // Stale pooled socket; fall through to a fresh connection.
    }
    let mut conn = Conn::connect(authority)?;
    let response = conn.call_auth(method, path_and_query, body, token)?;
    if !response.close {
        pool_put(conn);
    }
    Ok(response)
}

/// Delay between the two attempts of [`roundtrip_retry`].
pub const RETRY_DELAY: Duration = Duration::from_millis(50);

/// [`pooled_roundtrip`] with one bounded retry: any failure of the first
/// attempt — refused/reset connection, timeout, or a response cut off
/// mid-frame — sleeps [`RETRY_DELAY`] and tries once more before the
/// error stands. One retry rides out the transient blips of a busy or
/// restarting server; keeping it *bounded* keeps a hard failure loud
/// (an unreachable cache degrades to cold-cache misses, an unreachable
/// dispatcher errors) instead of becoming an unbounded hang.
pub fn roundtrip_retry(
    authority: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
) -> Result<Response, HttpError> {
    roundtrip_retry_auth(authority, method, path_and_query, body, None)
}

/// [`roundtrip_retry`] with a bearer token attached to the request.
pub fn roundtrip_retry_auth(
    authority: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
    token: Option<&str>,
) -> Result<Response, HttpError> {
    spp_par::retry(2, RETRY_DELAY, |_| {
        pooled_roundtrip_auth(authority, method, path_and_query, body, token)
    })
}

/// Perform one blocking request against `authority` (a `host:port`
/// string) on its own connection, `Connection: close`. The pooled path
/// ([`pooled_roundtrip`]) is the production client; this one-shot shape
/// remains for tests and for deliberately unpooled probes (e.g. the
/// bench harness's close-per-request mode).
pub fn roundtrip(
    authority: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
) -> Result<Response, HttpError> {
    roundtrip_auth(authority, method, path_and_query, body, None)
}

/// [`roundtrip`] with a bearer token attached to the request.
pub fn roundtrip_auth(
    authority: &str,
    method: &str,
    path_and_query: &str,
    body: &str,
    token: Option<&str>,
) -> Result<Response, HttpError> {
    let stream = TcpStream::connect(authority).map_err(io_error)?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(io_error)?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(io_error)?;
    write_request(
        &stream,
        authority,
        method,
        path_and_query,
        body,
        true,
        token,
    )?;
    let mut buf = RecvBuf::new();
    read_response(&stream, &mut buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed raw bytes to `read_request` through a real socket pair.
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Drop closes the socket so a body read sees EOF, not a hang.
        });
        let (stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
        let mut buf = RecvBuf::new();
        let parsed = read_request(&stream, &mut buf, 1 << 20, None, false);
        writer.join().unwrap();
        parsed
    }

    #[test]
    fn duplicate_content_length_headers_are_rejected() {
        // Last-wins on a repeated Content-Length is the classic
        // request-smuggling setup; both agreeing and conflicting
        // repeats must die with a 400-class parse error.
        for raw in [
            "POST /solve HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhi",
            "POST /solve HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi",
            "PUT /cache/k HTTP/1.1\r\ncontent-length: 1\r\nCONTENT-LENGTH: 1\r\n\r\nx",
        ] {
            match parse_raw(raw.as_bytes()) {
                Err(HttpError::Bad(msg)) => {
                    assert!(msg.contains("duplicate Content-Length"), "{msg}")
                }
                other => panic!("expected Bad, got {other:?}"),
            }
        }
    }

    #[test]
    fn comma_separated_content_length_accepts_agreement_rejects_conflict() {
        // One header whose value is a recombined list: identical members
        // are the RFC 9112 §6.3 recovery case, anything else is fatal.
        let ok = parse_raw(b"POST /solve HTTP/1.1\r\nContent-Length: 2, 2\r\n\r\nhi").unwrap();
        assert_eq!(ok.body, "hi");
        for raw in [
            "POST /solve HTTP/1.1\r\nContent-Length: 2, 5\r\n\r\nhi",
            "POST /solve HTTP/1.1\r\nContent-Length: 2, x\r\n\r\nhi",
            "POST /solve HTTP/1.1\r\nContent-Length: ,\r\n\r\nhi",
        ] {
            assert!(
                matches!(parse_raw(raw.as_bytes()), Err(HttpError::Bad(_))),
                "{raw:?} should be rejected"
            );
        }
    }

    #[test]
    fn authorization_header_is_captured_verbatim() {
        let r = parse_raw(b"GET /stats HTTP/1.1\r\nAuthorization: Bearer s3cr3t\r\n\r\n").unwrap();
        assert_eq!(r.authorization.as_deref(), Some("Bearer s3cr3t"));
        let r = parse_raw(b"GET /stats HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.authorization, None);
    }

    #[test]
    fn reason_covers_auth_and_unavailable() {
        assert_eq!(reason(401), "Unauthorized");
        assert_eq!(reason(408), "Request Timeout");
        assert_eq!(reason(503), "Service Unavailable");
    }

    #[test]
    fn pipelined_requests_survive_in_the_recv_buf() {
        // Two requests in one write: the first parse must leave the
        // second intact in the connection's RecvBuf, and the second
        // parse must complete without touching the socket again.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\n\r\n")
                .unwrap();
            s
        });
        let (stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
        let mut buf = RecvBuf::new();
        let first = read_request(&stream, &mut buf, 1 << 20, None, false).unwrap();
        assert_eq!(first.path, "/one");
        assert!(buf.has_buffered(), "second request should be buffered");
        let second = read_request(&stream, &mut buf, 1 << 20, None, false).unwrap();
        assert_eq!(second.path, "/two");
        drop(writer.join().unwrap());
    }

    #[test]
    fn trickled_message_dies_at_its_deadline_not_per_byte() {
        // A byte-at-a-time client: each byte lands within the read
        // timeout, but the whole-message budget still cuts it off —
        // trickling must not reset the clock (the slowloris guard).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            for b in b"GET /slow HTTP/1.1\r\nHost: x\r\n" {
                if s.write_all(&[*b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(30));
            }
            s
        });
        let (stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
        let mut buf = RecvBuf::new();
        let started = Instant::now();
        let result = read_request(
            &stream,
            &mut buf,
            1 << 20,
            Some(Duration::from_millis(200)),
            false,
        );
        assert!(
            matches!(result, Err(HttpError::Deadline)),
            "expected Deadline, got {result:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline took {:?}",
            started.elapsed()
        );
        drop(stream); // unblock the writer
        let _ = writer.join();
    }

    #[test]
    fn extra_response_headers_are_emitted() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            write_response_headers(
                &stream,
                401,
                "application/json",
                "{}",
                true,
                &[("WWW-Authenticate", "Bearer")],
            )
            .unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        server.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 401 Unauthorized\r\n"), "{raw}");
        assert!(raw.contains("\r\nWWW-Authenticate: Bearer\r\n"), "{raw}");
        assert!(raw.ends_with("\r\n\r\n{}"), "{raw}");
    }

    #[test]
    fn bearer_token_is_sent_on_the_wire() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
            let mut buf = RecvBuf::new();
            let request = read_request(&stream, &mut buf, 1 << 20, None, false).unwrap();
            write_response(&stream, 200, "text/plain", "ok").unwrap();
            request.authorization
        });
        let response = roundtrip_auth(
            &addr.to_string(),
            "PUT",
            "/cache/k",
            "body",
            Some("tok-123"),
        )
        .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(server.join().unwrap().as_deref(), Some("Bearer tok-123"));
    }

    #[test]
    fn connection_header_semantics() {
        // HTTP/1.1: keep-alive unless an explicit close token.
        assert!(!connection_closes("HTTP/1.1", None));
        assert!(connection_closes("HTTP/1.1", Some("close")));
        assert!(connection_closes("HTTP/1.1", Some("Close")));
        assert!(connection_closes("HTTP/1.1", Some("keep-alive, close")));
        assert!(!connection_closes("HTTP/1.1", Some("keep-alive")));
        // HTTP/1.0: close unless an explicit keep-alive token.
        assert!(connection_closes("HTTP/1.0", None));
        assert!(!connection_closes("HTTP/1.0", Some("keep-alive")));
        assert!(connection_closes("HTTP/1.0", Some("close")));
    }

    #[test]
    fn base_url_parsing() {
        assert_eq!(
            parse_base_url("http://127.0.0.1:8080").unwrap(),
            "127.0.0.1:8080"
        );
        assert_eq!(
            parse_base_url("http://localhost:80/").unwrap(),
            "localhost:80"
        );
        for bad in [
            "https://host:1",
            "http://host:1/path",
            "http://host",
            "http://host:notaport",
            "host:80",
        ] {
            assert!(parse_base_url(bad).is_err(), "{bad} should be rejected");
        }
    }
}
