//! # spp-serve — the HTTP front end of the solve engine
//!
//! Turns the single-machine batch driver into a multi-machine system
//! using the two seams the engine already has:
//!
//! * the **[`SolveCache`](spp_engine::SolveCache) trait** — [`HttpCache`]
//!   is a network-backed implementation, so any `spp batch --cache-url`
//!   worker on any machine shares one cache server's directory through
//!   the same get-before-solve / put-on-miss pipeline as a local
//!   `--cache-dir` run (byte-identical output, zero solver invocations
//!   when warm);
//! * the **cache-entry wire format** — the server's `GET`/`PUT
//!   /cache/<key>` speak the existing `spp-cache-entry` JSON documents
//!   unchanged, with the on-disk file-name schema as the URL key space.
//!
//! On top of those, `POST /solve` answers one-off solve requests
//! (an `spp-instance` body, solver + config as query params) straight
//! from the shared cache, invoking a solver only on miss.
//!
//! Since PR 5 the same server also carries the **dispatcher role**: the
//! engine's [`WorkSource`](spp_engine::WorkSource) seam goes over the
//! wire as `POST /work/lease` / `POST /work/complete` /
//! `GET /work/status` / `GET /work/report`, with [`RemoteLease`] as the
//! client side — a fleet of `spp work` pullers drains one queue, leases
//! expired by a killed worker are requeued, and the merged report is
//! byte-identical to a single-process `spp batch`.
//!
//! Everything is `std`-only (`TcpListener`/`TcpStream`), matching the
//! workspace's no-crates.io constraint: [`http`] is a minimal HTTP/1.1
//! message layer — persistent keep-alive connections with
//! `Content-Length` framing and a per-thread client connection pool —
//! [`server`] the service (per-connection request budget, idle timeout,
//! connection counters and latency quantiles in `/stats`), [`client`]
//! the `SolveCache` adapter, [`work_client`] the `WorkSource` adapter,
//! and [`bench`] the `spp bench serve` load generator that measures the
//! whole stack (RPS + latency histograms, keep-alive vs close).
//! Concurrency is a fixed [`spp_par::run_workers`] accept pool — bounded
//! by construction, no thread per connection — and on Linux the
//! [`event`] module adds an epoll multiplexer (`--io-mode event`) so
//! idle keep-alive connections park on one event-loop thread instead of
//! holding pool workers.
//!
//! ## Deployment sketch
//!
//! ```text
//!   machine 0:  spp dispatch --input-dir suite/ --algos nfdh,dc-nfdh \
//!                            --cache-dir /var/spp-cache --addr 0.0.0.0:8080
//!   machine 1…N:  spp work --dispatcher-url http://host:8080 \
//!                          --cache-url http://host:8080
//!   anywhere:   spp batch --dispatcher-url http://host:8080   # byte-identical table
//! ```

//! ## Scaling the cache horizontally
//!
//! [`ShardedCache`] consistent-hashes every cache key across N such
//! servers (64 virtual ring points per node, replication factor R with
//! read-repair), so a fleet shares one logical cache bigger than any
//! single disk — same wire format, same byte-identical-output contract,
//! and node loss degrades to cache misses, never to errors. [`auth`]
//! adds the fleet's shared-secret bearer-token gate (`--token-file`):
//! mutating endpoints require `Authorization: Bearer <token>`,
//! compared in constant time.

pub mod auth;
pub mod bench;
pub mod client;
pub mod event;
pub mod http;
pub mod server;
pub mod sharded;
pub mod work_client;

pub use client::HttpCache;
pub use server::{
    EndpointCounters, IoMode, ServeConfig, ServeCounters, ServeError, Server, ServerHandle,
};
pub use sharded::ShardedCache;
pub use work_client::RemoteLease;
