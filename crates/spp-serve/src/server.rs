//! The `spp serve` HTTP service: a shared solve-cache server plus a
//! solve endpoint, over the engine's existing seams.
//!
//! ## Endpoints
//!
//! | method & path | body | meaning |
//! |---|---|---|
//! | `GET /cache/<digest>-<solver>-<config-fp>` | — | fetch one `spp-cache-entry` document (404 when absent or damaged) |
//! | `PUT /cache/<digest>-<solver>-<config-fp>` | `spp-cache-entry` JSON | publish one entry (write-atomic; 400 unless the body's embedded key maps to exactly this name) |
//! | `POST /solve?solver=<name>[&epsilon=..&k=..&shelf_r=..&strict=..]` | `spp-instance` JSON | consult the cache, solve on miss, return an `spp-solve-report` document |
//! | `GET /stats` | — | server counters + live cache-directory stats as `spp-serve-stats` JSON |
//!
//! The path component of `/cache/…` is exactly
//! [`CacheKey::file_name`](spp_engine::CacheKey::file_name) minus its
//! `.json` extension, so the HTTP key space and the on-disk key space are
//! the same space. A GET validates the stored entry (parse + embedded key
//! must reproduce the file name) before serving — a damaged file is 404,
//! never bytes that could be mistaken for an entry; a PUT validates the
//! same invariant before writing, so no client can plant a mis-filed
//! entry. All writes go through
//! [`write_entry_atomic`](spp_engine::cache::write_entry_atomic): the
//! temp-file + `rename` discipline that makes concurrent writers (local
//! `DiskCache` users and HTTP PUTs alike) safe on one directory.
//!
//! ## Execution model
//!
//! A fixed pool of [`spp_par::run_workers`] threads all block in
//! `accept` on one listener; each serves one `Connection: close` request
//! at a time, so at most `workers` requests (and hence at most `workers`
//! concurrent solves) are in flight — the bounded-worker-pool contract.
//! Solves flow through the engine's one cache-consulting
//! [`execute_cells`] pipeline, exactly like `spp batch`.
//!
//! Errors are structured: every 4xx/5xx body is an `spp-serve-error`
//! JSON document naming the problem (parse errors keep the field + line
//! detail of `spp_core::json`).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use spp_core::json;
use spp_engine::cache::{entry_parse, write_entry_atomic};
use spp_engine::{
    execute_cells, BatchJob, CacheStats, DiskCache, Registry, SolveCache, SolveConfig, SolveRequest,
};

use crate::http::{self, HttpError, Request};

/// Default cap on `PUT /cache` and `POST /solve` bodies (8 MiB — roughly
/// a 60 000-item instance, far beyond anything the suite generates).
pub const DEFAULT_MAX_BODY: usize = 8 * 1024 * 1024;

/// Server configuration (the `spp serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub addr: String,
    /// Worker-pool size; `0` means `available_parallelism`.
    pub workers: usize,
    /// Request-body limit in bytes.
    pub max_body: usize,
    /// Directory of the backing [`DiskCache`].
    pub cache_dir: PathBuf,
    /// Refuse `PUT /cache` and skip write-back after `/solve` misses.
    pub readonly: bool,
}

impl ServeConfig {
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_body: DEFAULT_MAX_BODY,
            cache_dir: cache_dir.into(),
            readonly: false,
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
    }
}

/// Failures to *stand up* the service (per-request failures are HTTP
/// responses, never process errors).
#[derive(Debug)]
pub enum ServeError {
    Bind { addr: String, err: String },
    Cache(spp_engine::CacheError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, err } => write!(f, "cannot bind {addr}: {err}"),
            ServeError::Cache(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Lifetime request counters, all monotonically increasing. `/stats`
/// reports them next to the cache handle's own [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Requests accepted (whatever their outcome).
    pub requests: u64,
    /// `GET /cache` that returned an entry.
    pub cache_get_hits: u64,
    /// `GET /cache` that returned 404 (absent or damaged).
    pub cache_get_misses: u64,
    /// Accepted `PUT /cache` writes.
    pub cache_puts: u64,
    /// `/solve` requests that invoked a solver (cache miss).
    pub solves: u64,
    /// `/solve` requests answered from the cache.
    pub solve_cache_hits: u64,
    /// Responses with a 4xx/5xx status — excluding `GET /cache` misses,
    /// which are protocol-normal 404s already counted as
    /// `cache_get_misses`.
    pub errors: u64,
}

#[derive(Default)]
struct AtomicCounters {
    requests: AtomicU64,
    cache_get_hits: AtomicU64,
    cache_get_misses: AtomicU64,
    cache_puts: AtomicU64,
    solves: AtomicU64,
    solve_cache_hits: AtomicU64,
    errors: AtomicU64,
}

impl AtomicCounters {
    fn snapshot(&self) -> ServeCounters {
        ServeCounters {
            requests: self.requests.load(Ordering::Relaxed),
            cache_get_hits: self.cache_get_hits.load(Ordering::Relaxed),
            cache_get_misses: self.cache_get_misses.load(Ordering::Relaxed),
            cache_puts: self.cache_puts.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
            solve_cache_hits: self.solve_cache_hits.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

struct State {
    cache: DiskCache,
    registry: Registry,
    counters: AtomicCounters,
    max_body: usize,
    shutdown: AtomicBool,
}

/// A bound-but-not-yet-running service. [`Server::run`] blocks the
/// calling thread on the worker pool; [`Server::spawn`] runs it on a
/// background thread and returns a [`ServerHandle`] for shutdown —
/// the in-process form the tests and `HttpCache` agreement suite use.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    workers: usize,
    state: Arc<State>,
}

impl Server {
    /// Bind the listener and open the cache directory.
    pub fn bind(config: &ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| ServeError::Bind {
            addr: config.addr.clone(),
            err: e.to_string(),
        })?;
        let addr = listener.local_addr().map_err(|e| ServeError::Bind {
            addr: config.addr.clone(),
            err: e.to_string(),
        })?;
        // A read-only server over a missing directory would answer every
        // request 404/500 forever; refuse at startup like the CLI does.
        if config.readonly && !config.cache_dir.is_dir() {
            return Err(ServeError::Cache(spp_engine::CacheError::Io {
                path: config.cache_dir.display().to_string(),
                err: "read-only cache directory does not exist".into(),
            }));
        }
        let cache =
            DiskCache::new(&config.cache_dir, config.readonly).map_err(ServeError::Cache)?;
        Ok(Server {
            listener,
            addr,
            workers: config.effective_workers(),
            state: Arc::new(State {
                cache,
                registry: Registry::builtin(),
                counters: AtomicCounters::default(),
                max_body: config.max_body,
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The actually bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until [`ServerHandle::shutdown`] flips the flag. Blocks on a
    /// fixed [`spp_par::run_workers`] pool: concurrency — connections and
    /// solves alike — is bounded at `workers` by construction.
    pub fn run(self) {
        let state = &self.state;
        let listener = &self.listener;
        spp_par::run_workers(self.workers, |_| loop {
            if state.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    if state.shutdown.load(Ordering::Relaxed) {
                        break; // wake-up poke, not a request
                    }
                    // A panicking handler (a solver bug on some input)
                    // must cost one response, not one pool worker — an
                    // uncaught unwind here would silently shrink the pool
                    // to zero over time.
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(&stream, state);
                    }));
                    if caught.is_err() {
                        state.counters.errors.fetch_add(1, Ordering::Relaxed);
                        let _ = http::write_response(
                            &stream,
                            500,
                            "application/json",
                            &error_body(500, "internal error while handling the request"),
                        );
                    }
                }
                // Transient accept failures (peer reset mid-handshake,
                // fd pressure): keep the worker alive.
                Err(_) => continue,
            }
        });
    }

    /// Run on a background thread; the returned handle stops the pool.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let workers = self.workers;
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            workers,
            state,
            thread,
        }
    }
}

/// Handle to a running [`Server::spawn`] instance.
pub struct ServerHandle {
    addr: SocketAddr,
    workers: usize,
    state: Arc<State>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `host:port` authority string for clients.
    pub fn authority(&self) -> String {
        self.addr.to_string()
    }

    /// Base URL for [`HttpCache::new`](crate::HttpCache::new).
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Counter snapshot (the same numbers `/stats` reports).
    pub fn counters(&self) -> ServeCounters {
        self.state.counters.snapshot()
    }

    /// Stop accepting, wake every worker, and join the pool.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        // One poke per worker: each blocked accept returns once, sees the
        // flag, and exits.
        for _ in 0..self.workers {
            let _ = TcpStream::connect(self.addr);
        }
        let _ = self.thread.join();
    }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

const ERROR_FORMAT: &str = "spp-serve-error";
const STATS_FORMAT: &str = "spp-serve-stats";
const SOLVE_FORMAT: &str = "spp-solve-report";

fn error_body(status: u16, msg: &str) -> String {
    format!(
        "{{\n  \"format\": \"{ERROR_FORMAT}\",\n  \"status\": {status},\n  \"error\": \"{}\"\n}}\n",
        json::escape(msg)
    )
}

/// The outcome every handler reduces to.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: String,
    /// 4xx that is part of the protocol's happy path (a cache-GET miss):
    /// not an `errors` counter event.
    expected: bool,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body,
            expected: false,
        }
    }

    fn error(status: u16, msg: &str) -> Reply {
        Reply::json(status, error_body(status, msg))
    }
}

fn handle_connection(stream: &TcpStream, state: &State) {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    let reply = match http::read_request(stream, state.max_body) {
        Ok(request) => route(&request, state),
        Err(HttpError::Io(_)) => return, // peer went away; no response owed
        Err(HttpError::LengthRequired) => Reply::error(411, "Content-Length header required"),
        Err(HttpError::TooLarge { limit }) => {
            Reply::error(413, &format!("request body exceeds the {limit}-byte limit"))
        }
        Err(HttpError::Bad(msg)) => Reply::error(400, &msg),
    };
    if reply.status >= 400 && !reply.expected {
        state.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
    let _ = http::write_response(stream, reply.status, reply.content_type, &reply.body);
}

fn route(request: &Request, state: &State) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/stats") => stats_reply(state),
        ("GET", path) if path.starts_with("/cache/") => cache_get(&path["/cache/".len()..], state),
        ("PUT", path) if path.starts_with("/cache/") => {
            cache_put(&path["/cache/".len()..], &request.body, state)
        }
        ("POST", "/solve") => solve(request, state),
        ("GET" | "PUT" | "POST" | "DELETE" | "HEAD", _) => Reply::error(
            404,
            &format!(
                "no such endpoint {} {}; this server speaks GET/PUT /cache/<key>, POST /solve, GET /stats",
                request.method, request.path
            ),
        ),
        _ => Reply::error(405, &format!("method {} not supported", request.method)),
    }
}

/// A `/cache/` path component is exactly a cache entry's file stem:
/// lowercase digest hex, registry solver name, config fingerprint hex,
/// dash-joined. Anything else — in particular separators or dots that
/// could escape the cache directory — is rejected before touching the
/// filesystem.
fn valid_key_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 256
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
}

fn cache_get(name: &str, state: &State) -> Reply {
    if !valid_key_name(name) {
        return Reply::error(400, &format!("invalid cache key {name:?}"));
    }
    let file_name = format!("{name}.json");
    let path = state.cache.dir().join(&file_name);
    let miss = |state: &State| {
        state
            .counters
            .cache_get_misses
            .fetch_add(1, Ordering::Relaxed);
        Reply {
            expected: true,
            ..Reply::error(404, &format!("no cache entry {name}"))
        }
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return miss(state);
    };
    // Serve only a complete entry that maps back to this name — a
    // damaged or mis-filed file is indistinguishable from absent, the
    // same trust model as DiskCache::get.
    match entry_parse(&text) {
        Ok((key, _)) if key.file_name() == file_name => {
            state
                .counters
                .cache_get_hits
                .fetch_add(1, Ordering::Relaxed);
            Reply::json(200, text)
        }
        _ => miss(state),
    }
}

fn cache_put(name: &str, body: &str, state: &State) -> Reply {
    if !valid_key_name(name) {
        return Reply::error(400, &format!("invalid cache key {name:?}"));
    }
    if state.cache.is_readonly() {
        return Reply::error(403, "cache is read-only");
    }
    let file_name = format!("{name}.json");
    let (key, _cell) = match entry_parse(body) {
        Ok(parsed) => parsed,
        Err(e) => return Reply::error(400, &format!("body is not a cache entry: {e}")),
    };
    if key.file_name() != file_name {
        return Reply::error(
            400,
            &format!(
                "entry key maps to {:?}, not to the requested name {:?}",
                key.file_name(),
                file_name
            ),
        );
    }
    // Store the canonical serialization (== the validated body for every
    // entry our own tools produce).
    match write_entry_atomic(state.cache.dir(), &file_name, body) {
        Ok(()) => {
            state.counters.cache_puts.fetch_add(1, Ordering::Relaxed);
            Reply {
                status: 204,
                content_type: "application/json",
                body: String::new(),
                expected: false,
            }
        }
        Err(e) => Reply::error(500, &e.to_string()),
    }
}

/// Parse `/solve` query params into a solver name + [`SolveConfig`].
/// Unknown keys are rejected by name (the same strictness as the
/// instance-file schema: a typo'd knob must not silently run defaults).
fn solve_params(request: &Request) -> Result<(String, SolveConfig), String> {
    let mut solver: Option<String> = None;
    let mut config = SolveConfig::default();
    for (k, v) in request.query_pairs() {
        match k {
            "solver" => solver = Some(v.to_string()),
            "epsilon" => {
                config.epsilon = v.parse().map_err(|_| format!("bad epsilon {v:?}"))?;
            }
            "k" => config.k = v.parse().map_err(|_| format!("bad k {v:?}"))?,
            "shelf_r" => {
                config.shelf_r = v.parse().map_err(|_| format!("bad shelf_r {v:?}"))?;
            }
            "strict" => config.strict = v.parse().map_err(|_| format!("bad strict {v:?}"))?,
            other => return Err(format!("unknown query parameter {other:?}")),
        }
    }
    // Domain checks mirror the solver-side assertions (APTAS requires
    // ε > 0 and K ≥ 1, the online shelf requires r ∈ (0,1)) — a remote
    // request must become a 400, never a worker panic.
    if !config.epsilon.is_finite() || config.epsilon <= 0.0 {
        return Err(format!("epsilon must be positive, got {}", config.epsilon));
    }
    if config.k < 1 {
        return Err("k must be at least 1".to_string());
    }
    if !config.shelf_r.is_finite() || config.shelf_r <= 0.0 || config.shelf_r >= 1.0 {
        return Err(format!("shelf_r must be in (0, 1), got {}", config.shelf_r));
    }
    let solver = solver.ok_or("missing required query parameter solver=<name>")?;
    Ok((solver, config))
}

fn solve(request: &Request, state: &State) -> Reply {
    let (solver_name, config) = match solve_params(request) {
        Ok(p) => p,
        Err(e) => return Reply::error(400, &e),
    };
    let solver = match state.registry.get_or_err(&solver_name) {
        Ok(s) => s,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    let prec = match spp_gen::fileio::from_json(&request.body) {
        Ok(p) => p,
        Err(e) => return Reply::error(400, &format!("body is not an spp-instance: {e}")),
    };
    let solve_request = SolveRequest::new(prec).with_config(config.clone());
    let jobs = [BatchJob::new("http", solve_request)];
    let solvers = vec![solver];
    // The engine's one pipeline: cache get → solve on miss → atomic put.
    let outcomes = match execute_cells(&jobs, &solvers, Some(&state.cache)) {
        Ok(o) => o,
        Err(e) => return Reply::error(500, &e.to_string()),
    };
    let cell = &outcomes[0];
    let digest = cell
        .digest
        .expect("execute_cells computes digests whenever a cache is attached");
    if cell.from_cache {
        state
            .counters
            .solve_cache_hits
            .fetch_add(1, Ordering::Relaxed);
    } else {
        state.counters.solves.fetch_add(1, Ordering::Relaxed);
    }
    // The report carries exactly the portable cell fields — deterministic
    // and byte-stable whether the cell was solved or served ("cached" is
    // informational, like ShardRuntime). Placements stay a local-CLI
    // concern: the cache can never reproduce them, and a service answer
    // that changes shape between cold and warm would break the engine's
    // byte-identity contract.
    let mut body = String::new();
    {
        use std::fmt::Write as _;
        body.push_str("{\n");
        let _ = writeln!(body, "  \"format\": \"{SOLVE_FORMAT}\",");
        let _ = writeln!(body, "  \"version\": 1,");
        let _ = writeln!(body, "  \"solver\": \"{}\",", json::escape(&solver_name));
        let _ = writeln!(body, "  \"instance\": \"{digest}\",");
        let _ = writeln!(
            body,
            "  \"config\": \"{}\",",
            json::escape(&config.signature())
        );
        let _ = writeln!(body, "  \"status\": \"{}\",", cell.status.as_str());
        let _ = writeln!(body, "  \"makespan\": {:.17e},", cell.makespan);
        let _ = writeln!(body, "  \"lb\": {:.17e},", cell.combined_lb);
        let _ = writeln!(body, "  \"cached\": {}", cell.from_cache);
        body.push_str("}\n");
    }
    Reply::json(200, body)
}

fn stats_reply(state: &State) -> Reply {
    let dir = match spp_engine::cache::dir_stats(state.cache.dir()) {
        Ok(d) => d,
        Err(e) => return Reply::error(500, &e.to_string()),
    };
    let c = state.counters.snapshot();
    let cache: CacheStats = state.cache.stats();
    let mut body = String::new();
    {
        use std::fmt::Write as _;
        body.push_str("{\n");
        let _ = writeln!(body, "  \"format\": \"{STATS_FORMAT}\",");
        let _ = writeln!(body, "  \"version\": 1,");
        let _ = writeln!(body, "  \"requests\": {},", c.requests);
        let _ = writeln!(body, "  \"cache_get_hits\": {},", c.cache_get_hits);
        let _ = writeln!(body, "  \"cache_get_misses\": {},", c.cache_get_misses);
        let _ = writeln!(body, "  \"cache_puts\": {},", c.cache_puts);
        let _ = writeln!(body, "  \"solves\": {},", c.solves);
        let _ = writeln!(body, "  \"solve_cache_hits\": {},", c.solve_cache_hits);
        let _ = writeln!(body, "  \"errors\": {},", c.errors);
        let _ = writeln!(
            body,
            "  \"solve_cache\": \"{}\",",
            json::escape(&cache.to_string())
        );
        let _ = writeln!(body, "  \"entries\": {},", dir.entries);
        let _ = writeln!(body, "  \"corrupt\": {},", dir.corrupt);
        let _ = writeln!(body, "  \"bytes\": {},", dir.bytes);
        let _ = writeln!(body, "  \"instances\": {},", dir.instances);
        let _ = writeln!(body, "  \"configs\": {}", dir.configs);
        body.push_str("}\n");
    }
    Reply::json(200, body)
}
