//! The `spp serve` / `spp dispatch` HTTP service: a shared solve-cache
//! server, a solve endpoint, and a pull-based work dispatcher — all over
//! the engine's existing seams.
//!
//! One [`Server`] carries up to two independent **roles**:
//!
//! * **cache** (`spp serve --cache-dir`): the `/cache/*` key space and
//!   `POST /solve` over a [`DiskCache`];
//! * **dispatcher** (`spp dispatch`): a [`WorkQueue`] behind the
//!   `/work/*` endpoints — `spp work` pullers lease instance-file
//!   chunks, execute them through the engine pipeline, and report
//!   portable cells back; expired leases are requeued so a killed
//!   worker loses nothing, and completion is idempotent (a chunk
//!   completes once; late and duplicate completions are acknowledged,
//!   never double-counted).
//!
//! A process may serve both (a dispatcher that also hosts the shared
//! cache is the one-machine-per-role topology collapsed onto one).
//! Requests for a role the server does not carry are clean 404s.
//!
//! ## Endpoints
//!
//! | method & path | body | meaning |
//! |---|---|---|
//! | `GET /cache/<digest>-<solver>-<config-fp>` | — | fetch one `spp-cache-entry` document (404 when absent or damaged) |
//! | `PUT /cache/<digest>-<solver>-<config-fp>` | `spp-cache-entry` JSON | publish one entry (write-atomic; 400 unless the body's embedded key maps to exactly this name) |
//! | `POST /solve?solver=<name>[&epsilon=..&k=..&shelf_r=..&strict=..&budget_ms=..&improve_seed=..&improve_streams=..&improve_envelope=..]` | `spp-instance` JSON | consult the cache, solve on miss (running the anytime portfolio when `budget_ms > 0`, capped by `--max-budget-ms` / `--max-improve-streams`), return an `spp-solve-report` document |
//! | `POST /work/lease` | — | lease the next chunk (`spp-work-lease`: grant `work`, `wait`, or `done`) |
//! | `POST /work/complete` | `spp-work-complete` JSON | report a lease's cells (200 also for duplicates; 409 for unknown leases; 400 for cells that don't match the chunk) |
//! | `GET /work/status` | — | queue progress as `spp-work-status` JSON (jobs, chunks, requeues, done) |
//! | `GET /work/report` | — | the merged `spp-merged-report` once every chunk completed (409 before) |
//! | `GET /stats` | — | uptime, per-endpoint request counters, cache + queue stats as `spp-serve-stats` JSON |
//!
//! The path component of `/cache/…` is exactly
//! [`CacheKey::file_name`](spp_engine::CacheKey::file_name) minus its
//! `.json` extension, so the HTTP key space and the on-disk key space are
//! the same space. A GET validates the stored entry (parse + embedded key
//! must reproduce the file name) before serving — a damaged file is 404,
//! never bytes that could be mistaken for an entry; a PUT validates the
//! same invariant before writing, so no client can plant a mis-filed
//! entry. All writes go through
//! [`write_entry_atomic`](spp_engine::cache::write_entry_atomic): the
//! temp-file + `rename` discipline that makes concurrent writers (local
//! `DiskCache` users and HTTP PUTs alike) safe on one directory.
//!
//! ## Execution model
//!
//! Two I/O modes share one request path ([`IoMode`], `--io-mode`):
//!
//! * **blocking** (default): a fixed pool of [`spp_par::run_workers`]
//!   threads all block in `accept` on one listener; each serves one
//!   **connection** at a time — persistent HTTP/1.1, many requests per
//!   accepted socket — so at most `workers` connections (and hence at
//!   most `workers` concurrent solves) are in flight: the
//!   bounded-worker-pool contract, now paying TCP setup once per
//!   conversation instead of once per request. The idle wait is sliced
//!   so shutdown stays prompt even with idle keep-alive clients
//!   attached, and shrinks under pool pressure.
//! * **event** (Linux): one event-loop thread ([`crate::event`]) owns
//!   the listener and every *idle* connection via epoll; the same-sized
//!   worker pool only ever touches connections with readable bytes, so
//!   thousands of parked keep-alive clients cost zero workers and
//!   worker count sizes to CPU, not to connection count. Workers serve
//!   at most [`ServeConfig::turn_requests`] pipelined requests per
//!   readiness turn before re-parking the connection, so one greedy
//!   pipeliner cannot starve the ready queue.
//!
//! In both modes a connection is closed when the client asks
//! (`Connection: close`, or HTTP/1.0 without keep-alive), when its
//! request budget ([`ServeConfig::keepalive_requests`]) is spent, when
//! it sits idle past [`ServeConfig::idle_timeout`], when a started
//! request fails to complete within [`ServeConfig::header_timeout`]
//! (408 — the slowloris guard), or when a handler panics (the panic
//! costs one 500 response and that connection, never a pool worker).
//! Solves flow through the engine's one cache-consulting
//! [`execute_cells`] pipeline, exactly like `spp batch`.
//!
//! Errors are structured: every 4xx/5xx body is an `spp-serve-error`
//! JSON document naming the problem (parse errors keep the field + line
//! detail of `spp_core::json`).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use spp_core::hist::AtomicHist;
use spp_core::json;
use spp_engine::cache::{entry_parse, write_entry_atomic};
use spp_engine::work::{complete_parse, grant_to_json, status_to_json};
use spp_engine::{
    execute_cells, BatchJob, CacheStats, DiskCache, Registry, SolveCache, SolveConfig,
    SolveRequest, WorkQueue,
};

use crate::event::{self, EventConn, EventHooks, EventShared};
use crate::http::{self, HttpError, RecvBuf, Request};

/// Default cap on `PUT /cache` and `POST /solve` bodies (8 MiB — roughly
/// a 60 000-item instance, far beyond anything the suite generates).
pub const DEFAULT_MAX_BODY: usize = 8 * 1024 * 1024;

/// Default per-connection request budget: after this many requests the
/// server answers the next one with `Connection: close`. High enough to
/// amortize TCP setup to nothing, low enough that one greedy client
/// cannot monopolize a pool worker forever.
pub const DEFAULT_KEEPALIVE_REQUESTS: u64 = 1000;

/// Default keep-alive idle timeout: a connection with no next request
/// within this window is closed and its worker returns to `accept`.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// Default server-side cap on `POST /solve?budget_ms=`: one request must
/// not pin a pool worker in the anytime loop for longer than this —
/// larger asks are a 400, not a queued-behind-you stall for every other
/// client of that worker.
pub const DEFAULT_MAX_BUDGET_MS: u64 = 10_000;

/// Default server-side cap on `POST /solve?improve_streams=`: each
/// stream is a full budget's worth of compute, so the portfolio width a
/// request may ask for is bounded the same way the budget itself is.
pub const DEFAULT_MAX_IMPROVE_STREAMS: u64 = 16;

/// Granularity of the idle wait: workers re-check the shutdown flag
/// between slices, bounding shutdown latency even with idle keep-alive
/// clients attached.
const IDLE_SLICE: Duration = Duration::from_millis(200);

/// Idle grace under pool pressure: when no worker is left blocking in
/// `accept` (every one is serving a connection), each connection's idle
/// wait shrinks to this, so an idle keep-alive client frees its worker
/// for the backlog instead of starving new connections for the full
/// idle timeout. With spare workers the full timeout applies — reuse is
/// only traded away when it is actually contended.
const PRESSURED_IDLE: Duration = Duration::from_millis(200);

/// Backoff after a failed `accept` (fd exhaustion, transient kernel
/// errors): without it a persistent failure spins every worker hot.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(10);

/// Default whole-message deadline, armed when the first byte of a
/// request arrives: request line, headers, and body must all complete
/// within it or the request is answered 408 and the connection closed.
/// The slowloris guard — a byte-at-a-time client cannot pin a worker
/// past this budget, because trickling never resets the clock.
pub const DEFAULT_HEADER_TIMEOUT: Duration = Duration::from_secs(10);

/// Default cap on pipelined requests one connection may have served per
/// event-mode readiness turn before its worker re-parks it (fairness:
/// a heavy pipeliner rotates to the ready-queue tail instead of holding
/// its worker until the keep-alive budget runs out).
pub const DEFAULT_TURN_REQUESTS: u64 = 8;

/// How `spp serve` waits for request bytes — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Platform default: blocking, unless the `SPP_IO_MODE=event`
    /// environment opt-in is set on a platform that supports it.
    Auto,
    /// One pool worker per in-flight connection, blocking reads.
    Blocking,
    /// epoll multiplexer + worker pool (Linux; elsewhere this silently
    /// resolves to blocking — the automatic fallback).
    Event,
}

impl IoMode {
    /// Parse a `--io-mode` flag value.
    pub fn parse(s: &str) -> Result<IoMode, String> {
        match s {
            "auto" => Ok(IoMode::Auto),
            "blocking" => Ok(IoMode::Blocking),
            "event" => Ok(IoMode::Event),
            other => Err(format!(
                "unknown io mode {other:?}; expected auto, blocking, or event"
            )),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            IoMode::Auto => "auto",
            IoMode::Blocking => "blocking",
            IoMode::Event => "event",
        }
    }

    /// The mode a server actually runs: `Auto` consults the
    /// `SPP_IO_MODE` environment opt-in, and `Event` falls back to
    /// `Blocking` where epoll does not exist.
    fn resolve(self) -> IoMode {
        let event_available = event::SUPPORTED;
        match self {
            IoMode::Event if event_available => IoMode::Event,
            IoMode::Event | IoMode::Blocking => IoMode::Blocking,
            IoMode::Auto => {
                let opted_in = std::env::var("SPP_IO_MODE").is_ok_and(|v| v == "event");
                if event_available && opted_in {
                    IoMode::Event
                } else {
                    IoMode::Blocking
                }
            }
        }
    }
}

/// Server configuration (the `spp serve` / `spp dispatch` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub addr: String,
    /// Worker-pool size; `0` means `available_parallelism`.
    pub workers: usize,
    /// Request-body limit in bytes.
    pub max_body: usize,
    /// Directory of the backing [`DiskCache`]; `None` disables the cache
    /// role (`/cache/*` and `/solve` answer 404) — a dispatcher-only
    /// process.
    pub cache_dir: Option<PathBuf>,
    /// Refuse `PUT /cache` and skip write-back after `/solve` misses.
    pub readonly: bool,
    /// Requests served per connection before the server closes it
    /// (`0` is treated as `1`: every connection serves at least one).
    pub keepalive_requests: u64,
    /// How long a connection may sit idle between requests before the
    /// server closes it.
    pub idle_timeout: Duration,
    /// Shared bearer token (`--token-file`): when set, the mutating /
    /// expensive endpoints (`PUT /cache/*`, `POST /solve`,
    /// `POST /work/*`) require `Authorization: Bearer <token>` and
    /// answer 401 otherwise. `None` leaves the server open — the
    /// single-machine and trusted-network default.
    pub token: Option<String>,
    /// How connections wait for request bytes (`--io-mode`).
    pub io_mode: IoMode,
    /// Whole-message parse deadline, armed at a request's first byte
    /// (the slowloris guard; see [`DEFAULT_HEADER_TIMEOUT`]).
    pub header_timeout: Duration,
    /// Event-mode fairness cap: pipelined requests served per readiness
    /// turn before the connection re-parks.
    pub turn_requests: u64,
    /// Upper bound accepted for `POST /solve?budget_ms=` (`--max-budget-ms`);
    /// requests asking for more are rejected with 400 instead of pinning
    /// a pool worker in the anytime loop.
    pub max_budget_ms: u64,
    /// Upper bound accepted for `POST /solve?improve_streams=`
    /// (`--max-improve-streams`); wider portfolios are a 400.
    pub max_improve_streams: u64,
}

impl ServeConfig {
    /// A cache-role config (the historical `spp serve` shape).
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_body: DEFAULT_MAX_BODY,
            cache_dir: Some(cache_dir.into()),
            readonly: false,
            keepalive_requests: DEFAULT_KEEPALIVE_REQUESTS,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            token: None,
            io_mode: IoMode::Auto,
            header_timeout: DEFAULT_HEADER_TIMEOUT,
            turn_requests: DEFAULT_TURN_REQUESTS,
            max_budget_ms: DEFAULT_MAX_BUDGET_MS,
            max_improve_streams: DEFAULT_MAX_IMPROVE_STREAMS,
        }
    }

    /// A config with no cache role; pair with
    /// [`Server::bind_with_work`] for a dispatcher-only process.
    pub fn without_cache() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_body: DEFAULT_MAX_BODY,
            cache_dir: None,
            readonly: false,
            keepalive_requests: DEFAULT_KEEPALIVE_REQUESTS,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            token: None,
            io_mode: IoMode::Auto,
            header_timeout: DEFAULT_HEADER_TIMEOUT,
            turn_requests: DEFAULT_TURN_REQUESTS,
            max_budget_ms: DEFAULT_MAX_BUDGET_MS,
            max_improve_streams: DEFAULT_MAX_IMPROVE_STREAMS,
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
    }
}

/// Failures to *stand up* the service (per-request failures are HTTP
/// responses, never process errors).
#[derive(Debug)]
pub enum ServeError {
    Bind { addr: String, err: String },
    Cache(spp_engine::CacheError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, err } => write!(f, "cannot bind {addr}: {err}"),
            ServeError::Cache(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-endpoint request counts — the dispatcher (and cache server) is
/// observable from `/stats` alone, no log scraping. Every routed request
/// increments exactly one field, whatever its response status.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointCounters {
    /// `GET /cache/<key>`.
    pub cache_get: u64,
    /// `PUT /cache/<key>`.
    pub cache_put: u64,
    /// `POST /solve`.
    pub solve: u64,
    /// `GET /stats`.
    pub stats: u64,
    /// `POST /work/lease`.
    pub work_lease: u64,
    /// `POST /work/complete`.
    pub work_complete: u64,
    /// `GET /work/status`.
    pub work_status: u64,
    /// `GET /work/report`.
    pub work_report: u64,
    /// Anything else (404/405 paths).
    pub other: u64,
}

/// Lifetime request counters, all monotonically increasing. `/stats`
/// reports them next to the cache handle's own [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeCounters {
    /// Requests accepted (whatever their outcome).
    pub requests: u64,
    /// Connections accepted (each may carry many requests).
    pub connections_accepted: u64,
    /// Requests served on an already-used connection — request 2..n of a
    /// keep-alive conversation. `requests − keepalive_reuses` is the
    /// number of connections that carried at least one request.
    pub keepalive_reuses: u64,
    /// `accept` failures survived (each also costs a short backoff).
    pub accept_failures: u64,
    /// Most requests any single (finished or ongoing) connection served.
    pub max_requests_per_connection: u64,
    /// `GET /cache` that returned an entry.
    pub cache_get_hits: u64,
    /// `GET /cache` that returned 404 (absent or damaged).
    pub cache_get_misses: u64,
    /// Accepted `PUT /cache` writes.
    pub cache_puts: u64,
    /// `/solve` requests that invoked a solver (cache miss).
    pub solves: u64,
    /// `/solve` requests answered from the cache.
    pub solve_cache_hits: u64,
    /// Rounds the anytime improvement loop ran across all fresh
    /// `/solve` misses (0 unless clients pass `budget_ms=`).
    pub improve_iterations: u64,
    /// Portfolio streams run across all fresh `/solve` misses (equals
    /// `improve_iterations`'s denominator: rounds-per-stream is
    /// `iterations / streams`).
    pub improve_streams: u64,
    /// Decodes abandoned against the shared cross-stream envelope (0
    /// unless clients pass `improve_envelope=true`).
    pub improve_envelope_prunes: u64,
    /// Fresh `/solve` misses whose anytime loop strictly beat the seed
    /// placement.
    pub improved_cells: u64,
    /// Total makespan removed by improvement across fresh `/solve`
    /// misses (sum of `seed − improved`, in strip-height units).
    pub improve_total_gain: f64,
    /// Responses with a 4xx/5xx status — excluding `GET /cache` misses,
    /// which are protocol-normal 404s already counted as
    /// `cache_get_misses`, and pre-completion `GET /work/report` polls
    /// (a protocol-normal 409 while workers are still pulling).
    pub errors: u64,
    /// Requests by endpoint.
    pub endpoints: EndpointCounters,
}

#[derive(Default)]
struct AtomicCounters {
    requests: AtomicU64,
    connections_accepted: AtomicU64,
    keepalive_reuses: AtomicU64,
    accept_failures: AtomicU64,
    max_requests_per_connection: AtomicU64,
    cache_get_hits: AtomicU64,
    cache_get_misses: AtomicU64,
    cache_puts: AtomicU64,
    solves: AtomicU64,
    solve_cache_hits: AtomicU64,
    improve_iterations: AtomicU64,
    improve_streams: AtomicU64,
    improve_envelope_prunes: AtomicU64,
    improved_cells: AtomicU64,
    /// f64 bit pattern, accumulated via CAS ([`AtomicCounters::add_gain`]).
    improve_total_gain_bits: AtomicU64,
    errors: AtomicU64,
    ep_cache_get: AtomicU64,
    ep_cache_put: AtomicU64,
    ep_solve: AtomicU64,
    ep_stats: AtomicU64,
    ep_work_lease: AtomicU64,
    ep_work_complete: AtomicU64,
    ep_work_status: AtomicU64,
    ep_work_report: AtomicU64,
    ep_other: AtomicU64,
}

impl AtomicCounters {
    /// Accumulate improvement gain: f64 addition over an atomic bit
    /// pattern (compare-exchange loop — gains arrive from many pool
    /// workers at once and locks have no place on the request path).
    fn add_gain(&self, gain: f64) {
        if gain <= 0.0 {
            return;
        }
        let mut cur = self.improve_total_gain_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + gain).to_bits();
            match self.improve_total_gain_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn snapshot(&self) -> ServeCounters {
        ServeCounters {
            requests: self.requests.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            keepalive_reuses: self.keepalive_reuses.load(Ordering::Relaxed),
            accept_failures: self.accept_failures.load(Ordering::Relaxed),
            max_requests_per_connection: self.max_requests_per_connection.load(Ordering::Relaxed),
            cache_get_hits: self.cache_get_hits.load(Ordering::Relaxed),
            cache_get_misses: self.cache_get_misses.load(Ordering::Relaxed),
            cache_puts: self.cache_puts.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
            solve_cache_hits: self.solve_cache_hits.load(Ordering::Relaxed),
            improve_iterations: self.improve_iterations.load(Ordering::Relaxed),
            improve_streams: self.improve_streams.load(Ordering::Relaxed),
            improve_envelope_prunes: self.improve_envelope_prunes.load(Ordering::Relaxed),
            improved_cells: self.improved_cells.load(Ordering::Relaxed),
            improve_total_gain: f64::from_bits(
                self.improve_total_gain_bits.load(Ordering::Relaxed),
            ),
            errors: self.errors.load(Ordering::Relaxed),
            endpoints: EndpointCounters {
                cache_get: self.ep_cache_get.load(Ordering::Relaxed),
                cache_put: self.ep_cache_put.load(Ordering::Relaxed),
                solve: self.ep_solve.load(Ordering::Relaxed),
                stats: self.ep_stats.load(Ordering::Relaxed),
                work_lease: self.ep_work_lease.load(Ordering::Relaxed),
                work_complete: self.ep_work_complete.load(Ordering::Relaxed),
                work_status: self.ep_work_status.load(Ordering::Relaxed),
                work_report: self.ep_work_report.load(Ordering::Relaxed),
                other: self.ep_other.load(Ordering::Relaxed),
            },
        }
    }
}

/// The dispatcher role: the engine's lease queue behind a mutex (every
/// `/work/*` request takes it briefly; chunk execution happens in the
/// workers' processes, never under this lock).
struct WorkState {
    queue: Mutex<WorkQueue>,
}

struct State {
    cache: Option<DiskCache>,
    work: Option<WorkState>,
    registry: Registry,
    counters: AtomicCounters,
    /// Per-request service latency (route + response write, excluding
    /// idle waits between requests), in nanoseconds. `/stats` reports its
    /// quantiles in microseconds.
    latency: AtomicHist,
    max_body: usize,
    keepalive_requests: u64,
    idle_timeout: Duration,
    /// Whole-message parse deadline (the slowloris guard).
    header_timeout: Duration,
    /// Event-mode per-readiness-turn pipelining cap.
    turn_requests: u64,
    /// Largest `budget_ms=` a `/solve` request may ask for.
    max_budget_ms: u64,
    /// Largest `improve_streams=` a `/solve` request may ask for.
    max_improve_streams: u64,
    /// The resolved I/O mode this server runs (never `Auto`).
    io_mode: IoMode,
    /// Event-loop shared state; `Some` exactly when `io_mode` is Event.
    event: Option<Arc<EventShared>>,
    token: Option<String>,
    /// Workers currently blocked in `accept` — connection loops consult
    /// this to shrink their idle grace when the pool is saturated.
    accepting: AtomicU64,
    started: Instant,
    shutdown: AtomicBool,
}

/// A bound-but-not-yet-running service. [`Server::run`] blocks the
/// calling thread on the worker pool; [`Server::spawn`] runs it on a
/// background thread and returns a [`ServerHandle`] for shutdown —
/// the in-process form the tests and `HttpCache` agreement suite use.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    workers: usize,
    state: Arc<State>,
}

impl Server {
    /// Bind the listener and open the cache directory (cache role only —
    /// the historical `spp serve` shape).
    pub fn bind(config: &ServeConfig) -> Result<Server, ServeError> {
        Server::bind_with_work(config, None)
    }

    /// Bind with an optional dispatcher role: pass a [`WorkQueue`] and
    /// the server additionally speaks `/work/lease`, `/work/complete`,
    /// `/work/status` and `/work/report`. With `config.cache_dir` also
    /// set, one process serves both roles (queue + shared cache).
    pub fn bind_with_work(
        config: &ServeConfig,
        work: Option<WorkQueue>,
    ) -> Result<Server, ServeError> {
        if config.cache_dir.is_none() && work.is_none() {
            return Err(ServeError::Bind {
                addr: config.addr.clone(),
                err: "server has no role: no cache directory and no work queue".into(),
            });
        }
        let listener = TcpListener::bind(&config.addr).map_err(|e| ServeError::Bind {
            addr: config.addr.clone(),
            err: e.to_string(),
        })?;
        let addr = listener.local_addr().map_err(|e| ServeError::Bind {
            addr: config.addr.clone(),
            err: e.to_string(),
        })?;
        let cache = match &config.cache_dir {
            Some(dir) => {
                // A read-only server over a missing directory would answer
                // every request 404/500 forever; refuse at startup like
                // the CLI does.
                if config.readonly && !dir.is_dir() {
                    return Err(ServeError::Cache(spp_engine::CacheError::Io {
                        path: dir.display().to_string(),
                        err: "read-only cache directory does not exist".into(),
                    }));
                }
                Some(DiskCache::new(dir, config.readonly).map_err(ServeError::Cache)?)
            }
            None => None,
        };
        let io_mode = config.io_mode.resolve();
        let event = match io_mode {
            IoMode::Event => Some(Arc::new(EventShared::new().map_err(|e| {
                ServeError::Bind {
                    addr: config.addr.clone(),
                    err: format!("cannot set up the event loop: {e}"),
                }
            })?)),
            _ => None,
        };
        Ok(Server {
            listener,
            addr,
            workers: config.effective_workers(),
            state: Arc::new(State {
                cache,
                work: work.map(|queue| WorkState {
                    queue: Mutex::new(queue),
                }),
                registry: Registry::builtin(),
                counters: AtomicCounters::default(),
                latency: AtomicHist::new(),
                max_body: config.max_body,
                keepalive_requests: config.keepalive_requests.max(1),
                idle_timeout: config.idle_timeout.max(Duration::from_millis(1)),
                header_timeout: config.header_timeout.max(Duration::from_millis(1)),
                turn_requests: config.turn_requests.max(1),
                max_budget_ms: config.max_budget_ms,
                max_improve_streams: config.max_improve_streams,
                io_mode,
                event,
                token: config.token.clone(),
                accepting: AtomicU64::new(0),
                started: Instant::now(),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The I/O mode this server will actually run (`Auto` already
    /// resolved against the platform and the `SPP_IO_MODE` opt-in).
    pub fn io_mode(&self) -> IoMode {
        self.state.io_mode
    }

    /// The actually bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until [`ServerHandle::shutdown`] flips the flag. Blocks on a
    /// fixed [`spp_par::run_workers`] pool: concurrency — connections and
    /// solves alike — is bounded at `workers` by construction.
    pub fn run(self) {
        let state = &self.state;
        let listener = &self.listener;
        if let Some(shared) = &state.event {
            run_event(listener, state, shared, self.workers);
            return;
        }
        spp_par::run_workers(self.workers, |_| loop {
            if state.shutdown.load(Ordering::Relaxed) {
                break;
            }
            state.accepting.fetch_add(1, Ordering::Relaxed);
            let accepted = listener.accept();
            state.accepting.fetch_sub(1, Ordering::Relaxed);
            match accepted {
                Ok((stream, _)) => {
                    if state.shutdown.load(Ordering::Relaxed) {
                        break; // wake-up poke, not a request
                    }
                    state
                        .counters
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    // Last-resort unwind guard: per-request panics are
                    // already caught inside the connection loop, but a
                    // panic in the loop's own plumbing must still cost
                    // one connection, not one pool worker.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(&stream, state);
                    }));
                }
                // Transient accept failures (peer reset mid-handshake,
                // fd pressure): keep the worker alive, but back off —
                // a persistent failure must not spin every worker hot.
                Err(_) => {
                    state
                        .counters
                        .accept_failures
                        .fetch_add(1, Ordering::Relaxed);
                    if state.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(ACCEPT_BACKOFF);
                }
            }
        });
    }

    /// Run on a background thread; the returned handle stops the pool.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let workers = self.workers;
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            workers,
            state,
            thread,
        }
    }
}

/// Handle to a running [`Server::spawn`] instance.
pub struct ServerHandle {
    addr: SocketAddr,
    workers: usize,
    state: Arc<State>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `host:port` authority string for clients.
    pub fn authority(&self) -> String {
        self.addr.to_string()
    }

    /// Base URL for [`HttpCache::new`](crate::HttpCache::new).
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Counter snapshot (the same numbers `/stats` reports).
    pub fn counters(&self) -> ServeCounters {
        self.state.counters.snapshot()
    }

    /// Stop accepting, wake every worker, and join the pool.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        match &self.state.event {
            // Event mode: the self-pipe wakes the loop, the condvar
            // broadcast wakes the pool — no TCP pokes needed.
            Some(shared) => shared.initiate_shutdown(),
            // Blocking mode: one poke per worker, so each blocked
            // accept returns once, sees the flag, and exits.
            None => {
                for _ in 0..self.workers {
                    let _ = TcpStream::connect(self.addr);
                }
            }
        }
        let _ = self.thread.join();
    }
}

/// Event-mode service: one multiplexer thread (accept + parked
/// connections + idle deadlines) and `workers` pool threads that only
/// ever touch connections with readable bytes. The scope joins
/// everything before returning, and the loop always broadcasts shutdown
/// on exit so no worker can be left asleep.
fn run_event(listener: &TcpListener, state: &State, shared: &Arc<EventShared>, workers: usize) {
    let counters = &state.counters;
    let on_accept = || {
        counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
    };
    let on_accept_error = || {
        counters.accept_failures.fetch_add(1, Ordering::Relaxed);
    };
    let on_retire = |served: u32| {
        counters
            .max_requests_per_connection
            .fetch_max(u64::from(served), Ordering::Relaxed);
    };
    std::thread::scope(|scope| {
        let loop_shared = Arc::clone(shared);
        scope.spawn(move || {
            let hooks = EventHooks {
                on_accept: &on_accept,
                on_accept_error: &on_accept_error,
                on_retire: &on_retire,
            };
            let result = event::run_event_loop(listener, &loop_shared, state.idle_timeout, hooks);
            // Whatever ended the loop — shutdown or an epoll failure —
            // the pool must not be left blocked on the ready queue.
            loop_shared.initiate_shutdown();
            if let Err(e) = result {
                if !state.shutdown.load(Ordering::Relaxed) {
                    eprintln!("spp-serve: event loop failed: {e}");
                }
            }
        });
        for _ in 0..workers {
            let worker_shared = Arc::clone(shared);
            scope.spawn(move || {
                while let Some(conn) = worker_shared.next_ready() {
                    event_serve(conn, state, &worker_shared);
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

const ERROR_FORMAT: &str = "spp-serve-error";
const STATS_FORMAT: &str = "spp-serve-stats";
const SOLVE_FORMAT: &str = "spp-solve-report";

fn error_body(status: u16, msg: &str) -> String {
    format!(
        "{{\n  \"format\": \"{ERROR_FORMAT}\",\n  \"status\": {status},\n  \"error\": \"{}\"\n}}\n",
        json::escape(msg)
    )
}

/// The outcome every handler reduces to.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: String,
    /// 4xx that is part of the protocol's happy path (a cache-GET miss):
    /// not an `errors` counter event.
    expected: bool,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body,
            expected: false,
        }
    }

    fn error(status: u16, msg: &str) -> Reply {
        Reply::json(status, error_body(status, msg))
    }
}

/// Wait for the next request at a connection boundary, slicing the idle
/// wait so the worker re-checks the shutdown flag every [`IDLE_SLICE`].
/// Returns [`HttpError::Idle`] once the full idle budget (or shutdown)
/// expires with no byte received; any arriving byte hands off to the
/// normal request parse, bounded by the whole-message
/// [`State::header_timeout`] deadline.
fn read_request_idle(
    stream: &TcpStream,
    buf: &mut RecvBuf,
    state: &State,
) -> Result<Request, HttpError> {
    let mut waited = Duration::ZERO;
    loop {
        // Under pool pressure (no worker left in `accept`), this
        // connection's idle grace shrinks so its worker can drain the
        // backlog; re-checked each slice so relief applies immediately.
        let budget = if state.accepting.load(Ordering::Relaxed) == 0 {
            state.idle_timeout.min(PRESSURED_IDLE)
        } else {
            state.idle_timeout
        };
        let remaining = budget.saturating_sub(waited);
        if remaining.is_zero() || state.shutdown.load(Ordering::Relaxed) {
            return Err(HttpError::Idle);
        }
        let slice = remaining.min(IDLE_SLICE);
        stream
            .set_read_timeout(Some(slice))
            .map_err(|e| HttpError::Io(e.to_string()))?;
        match http::read_request(
            stream,
            buf,
            state.max_body,
            Some(state.header_timeout),
            false,
        ) {
            Err(HttpError::Idle) => waited += slice,
            other => return other,
        }
    }
}

/// Final response for a request that failed to parse (or to arrive
/// within its deadline); the connection always closes after — framing
/// can't be trusted past a malformed message.
fn protocol_error_close(stream: &TcpStream, e: HttpError, state: &State) {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    state.counters.errors.fetch_add(1, Ordering::Relaxed);
    let reply = match e {
        HttpError::LengthRequired => Reply::error(411, "Content-Length header required"),
        HttpError::TooLarge { limit } => {
            Reply::error(413, &format!("request body exceeds the {limit}-byte limit"))
        }
        HttpError::Deadline => Reply::error(408, "request not completed within the deadline"),
        HttpError::Bad(msg) => Reply::error(400, &msg),
        HttpError::Io(_) | HttpError::Closed | HttpError::Idle => unreachable!(),
    };
    let _ = http::write_response_conn(stream, reply.status, reply.content_type, &reply.body, true);
}

/// Route one parsed request and write its response. `served` is this
/// request's 1-based ordinal on its connection (keep-alive accounting
/// and the request budget). Returns whether the connection must close.
fn respond(stream: &TcpStream, request: &Request, served: u64, state: &State) -> bool {
    if served > 1 {
        state
            .counters
            .keepalive_reuses
            .fetch_add(1, Ordering::Relaxed);
    }
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    // A panicking handler (a solver bug on some input) must cost one
    // 500 response and this connection, not a pool worker — an
    // uncaught unwind here would silently shrink the pool to zero
    // over time.
    let (reply, panicked) =
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(request, state))) {
            Ok(reply) => (reply, false),
            Err(_) => (
                Reply::error(500, "internal error while handling the request"),
                true,
            ),
        };
    if reply.status >= 400 && !reply.expected {
        state.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
    let close = request.close
        || panicked
        || served >= state.keepalive_requests
        || state.shutdown.load(Ordering::Relaxed);
    // RFC 9110 §11.6.1: a 401 must name the authentication scheme it
    // expects.
    let extra: &[(&str, &str)] = if reply.status == 401 {
        &[("WWW-Authenticate", "Bearer")]
    } else {
        &[]
    };
    let written = http::write_response_headers(
        stream,
        reply.status,
        reply.content_type,
        &reply.body,
        close,
        extra,
    );
    state
        .latency
        .record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    close || written.is_err()
}

/// Serve one accepted connection (blocking mode): many requests per
/// socket, bounded by the request budget, the idle timeout, the
/// client's own `Connection` header, and shutdown. The [`RecvBuf`]
/// lives as long as the connection — a per-request buffer would drop
/// read-ahead bytes of a pipelined next request on the floor.
fn handle_connection(stream: &TcpStream, state: &State) {
    if stream.set_write_timeout(Some(http::IO_TIMEOUT)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut buf = RecvBuf::new();
    let mut served: u64 = 0;
    loop {
        let request = match read_request_idle(stream, &mut buf, state) {
            Ok(request) => request,
            // Clean end of the conversation: peer closed at a boundary,
            // idle budget spent, or shutdown. Nothing owed.
            Err(HttpError::Closed | HttpError::Idle) => break,
            // Peer broke mid-message (disconnect, stall): no one is
            // listening for a response.
            Err(HttpError::Io(_)) => break,
            // Protocol errors (and blown deadlines) get a final
            // response, then the connection closes.
            Err(e) => {
                protocol_error_close(stream, e, state);
                break;
            }
        };
        served += 1;
        if respond(stream, &request, served, state) {
            break;
        }
    }
    state
        .counters
        .max_requests_per_connection
        .fetch_max(served, Ordering::Relaxed);
}

/// What a worker does with a connection after one readiness turn.
enum Turn {
    /// Return it to the event loop (idle, or the per-turn cap).
    Park(EventConn),
    /// Done with it; the payload is its served-request count.
    Close(u32),
}

/// One event-mode service turn under a panic guard: park outcomes go
/// back to the loop, closes record `max_requests_per_connection` (the
/// loop does the same for connections it retires itself).
fn event_serve(conn: EventConn, state: &State, shared: &EventShared) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        serve_turn(conn, state, shared)
    })) {
        Ok(Turn::Park(conn)) => shared.park(conn),
        Ok(Turn::Close(served)) => {
            state
                .counters
                .max_requests_per_connection
                .fetch_max(u64::from(served), Ordering::Relaxed);
        }
        // The connection was lost to the unwind (already closed by its
        // Drop); per-request panics were caught inside `respond`, so
        // this only fires on turn-plumbing bugs.
        Err(_) => {}
    }
}

/// Serve one readiness turn of an event-mode connection: requests are
/// parsed and answered exactly like blocking mode, but a boundary with
/// nothing readable parks the connection instead of holding the worker,
/// and at most [`State::turn_requests`] pipelined requests are served
/// before yielding it back to the ready-queue rotation.
fn serve_turn(mut conn: EventConn, state: &State, shared: &EventShared) -> Turn {
    if conn.served == 0 {
        // First time a worker touches this connection.
        if conn
            .stream
            .set_write_timeout(Some(http::IO_TIMEOUT))
            .is_err()
        {
            return Turn::Close(conn.served);
        }
        let _ = conn.stream.set_nodelay(true);
    }
    let mut turn_served: u64 = 0;
    loop {
        if state.shutdown.load(Ordering::Relaxed) {
            return Turn::Close(conn.served);
        }
        // Boundary probe on the non-blocking socket. The moment a first
        // byte arrives, `read_request` flips the socket back to
        // blocking and arms the whole-message deadline, so the rest of
        // the parse — and the response write — run exactly like
        // blocking mode.
        let request = match http::read_request(
            &conn.stream,
            &mut conn.buf,
            state.max_body,
            Some(state.header_timeout),
            true,
        ) {
            Ok(request) => request,
            // Nothing readable at the boundary: hand the connection
            // back to epoll instead of holding this worker.
            Err(HttpError::Idle) => {
                shared
                    .counters
                    .eagain_retries
                    .fetch_add(1, Ordering::Relaxed);
                return Turn::Park(conn);
            }
            // Clean close at a boundary, or a peer broken mid-message.
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => return Turn::Close(conn.served),
            Err(e) => {
                protocol_error_close(&conn.stream, e, state);
                return Turn::Close(conn.served);
            }
        };
        conn.served = conn.served.saturating_add(1);
        turn_served += 1;
        if respond(&conn.stream, &request, u64::from(conn.served), state) {
            return Turn::Close(conn.served);
        }
        // Back to non-blocking for the next boundary probe.
        if conn.stream.set_nonblocking(true).is_err() {
            return Turn::Close(conn.served);
        }
        if turn_served >= state.turn_requests {
            // Fairness: yield. With pipelined bytes still buffered the
            // loop requeues this connection at the ready-queue tail;
            // otherwise it parks in epoll like any idle connection.
            return Turn::Park(conn);
        }
    }
}

/// Whether this request may use a token-gated endpoint. A server
/// without a configured token is open; with one, the request must carry
/// `Authorization: Bearer <token>` matching it (constant-time compare —
/// response timing must not leak how much of a guess was right).
fn authorized(request: &Request, state: &State) -> bool {
    let Some(expected) = &state.token else {
        return true;
    };
    request
        .authorization
        .as_deref()
        .and_then(crate::auth::bearer_token)
        .is_some_and(|presented| {
            crate::auth::constant_time_eq(presented.as_bytes(), expected.as_bytes())
        })
}

fn unauthorized() -> Reply {
    Reply::error(
        401,
        "missing or invalid bearer token; send Authorization: Bearer <token>",
    )
}

fn route(request: &Request, state: &State) -> Reply {
    let count = |c: &AtomicU64| {
        c.fetch_add(1, Ordering::Relaxed);
    };
    let ep = &state.counters;
    // Mutating / expensive endpoints sit behind the bearer-token gate;
    // read-only endpoints (cache GET, stats, work status/report) stay
    // open so health checks and dashboards need no credential plumbing.
    let protected = matches!(
        (request.method.as_str(), request.path.as_str()),
        ("PUT", path) if path.starts_with("/cache/")
    ) || matches!(
        (request.method.as_str(), request.path.as_str()),
        ("POST", "/solve" | "/work/lease" | "/work/complete")
    );
    if protected && !authorized(request, state) {
        count(&ep.ep_other);
        return unauthorized();
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/stats") => {
            count(&ep.ep_stats);
            stats_reply(state)
        }
        ("GET", path) if path.starts_with("/cache/") => {
            count(&ep.ep_cache_get);
            cache_get(&path["/cache/".len()..], state)
        }
        ("PUT", path) if path.starts_with("/cache/") => {
            count(&ep.ep_cache_put);
            cache_put(&path["/cache/".len()..], &request.body, state)
        }
        ("POST", "/solve") => {
            count(&ep.ep_solve);
            solve(request, state)
        }
        ("POST", "/work/lease") => {
            count(&ep.ep_work_lease);
            work_lease(state)
        }
        ("POST", "/work/complete") => {
            count(&ep.ep_work_complete);
            work_complete(&request.body, state)
        }
        ("GET", "/work/status") => {
            count(&ep.ep_work_status);
            work_status(state)
        }
        ("GET", "/work/report") => {
            count(&ep.ep_work_report);
            work_report(state)
        }
        ("GET" | "PUT" | "POST" | "DELETE" | "HEAD", _) => {
            count(&ep.ep_other);
            Reply::error(
                404,
                &format!(
                    "no such endpoint {} {}; this server speaks GET/PUT /cache/<key>, POST /solve, \
                     POST /work/lease, POST /work/complete, GET /work/status, GET /work/report, \
                     GET /stats",
                    request.method, request.path
                ),
            )
        }
        _ => {
            count(&ep.ep_other);
            Reply::error(405, &format!("method {} not supported", request.method))
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatcher role (`/work/*`)
// ---------------------------------------------------------------------------

/// The work queue, or the 404 every `/work/*` endpoint answers on a
/// server without the dispatcher role.
fn work_queue_of(state: &State) -> Result<&WorkState, Reply> {
    state.work.as_ref().ok_or_else(|| {
        Reply::error(
            404,
            "this server has no dispatcher role (start it as `spp dispatch` to serve a work queue)",
        )
    })
}

fn work_lease(state: &State) -> Reply {
    let ws = match work_queue_of(state) {
        Ok(ws) => ws,
        Err(reply) => return reply,
    };
    let mut queue = ws.queue.lock().expect("work queue mutex poisoned");
    let deadline = queue.timeout().map(|t| t.as_secs());
    let grant = queue.lease(Instant::now());
    Reply::json(200, grant_to_json(&grant, deadline))
}

fn work_complete(body: &str, state: &State) -> Reply {
    let ws = match work_queue_of(state) {
        Ok(ws) => ws,
        Err(reply) => return reply,
    };
    let (lease_id, start, cells) = match complete_parse(body) {
        Ok(parsed) => parsed,
        Err(e) => return Reply::error(400, &format!("body is not a work completion: {e}")),
    };
    let mut queue = ws.queue.lock().expect("work queue mutex poisoned");
    if !queue.knows_lease(lease_id) {
        // A lease this queue never granted (e.g. a worker outliving a
        // dispatcher restart): the worker's state is stale, not merely
        // malformed — 409 so it can tell the difference.
        return Reply::error(409, &format!("unknown lease id {lease_id}"));
    }
    match queue.complete(lease_id, start, &cells) {
        Ok(()) => Reply::json(
            200,
            "{\n  \"format\": \"spp-work-accepted\",\n  \"accepted\": true\n}\n".into(),
        ),
        Err(e) => Reply::error(400, &e.to_string()),
    }
}

fn work_status(state: &State) -> Reply {
    let ws = match work_queue_of(state) {
        Ok(ws) => ws,
        Err(reply) => return reply,
    };
    let mut queue = ws.queue.lock().expect("work queue mutex poisoned");
    Reply::json(200, status_to_json(&queue.status(Instant::now())))
}

fn work_report(state: &State) -> Reply {
    let ws = match work_queue_of(state) {
        Ok(ws) => ws,
        Err(reply) => return reply,
    };
    let mut queue = ws.queue.lock().expect("work queue mutex poisoned");
    match queue.merged() {
        Some(merged) => Reply::json(200, merged.to_json()),
        None => {
            let status = queue.status(Instant::now());
            Reply {
                // Polling for the report before the batch finishes is
                // protocol-normal (the thin batch client does exactly
                // that), not an error-counter event.
                expected: true,
                ..Reply::error(
                    409,
                    &format!(
                        "batch not complete: {} of {} chunks done",
                        status.completed_chunks, status.chunks
                    ),
                )
            }
        }
    }
}

/// A `/cache/` path component is exactly a cache entry's file stem:
/// lowercase digest hex, registry solver name, config fingerprint hex,
/// dash-joined. Anything else — in particular separators or dots that
/// could escape the cache directory — is rejected before touching the
/// filesystem.
fn valid_key_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 256
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
}

/// The disk cache, or the 404 every cache-role endpoint answers on a
/// server without one (a dispatcher-only process).
fn cache_of(state: &State) -> Result<&DiskCache, Reply> {
    state.cache.as_ref().ok_or_else(|| {
        Reply::error(
            404,
            "this server has no cache role (start it with --cache-dir to serve one)",
        )
    })
}

fn cache_get(name: &str, state: &State) -> Reply {
    let cache = match cache_of(state) {
        Ok(c) => c,
        Err(reply) => return reply,
    };
    if !valid_key_name(name) {
        return Reply::error(400, &format!("invalid cache key {name:?}"));
    }
    let file_name = format!("{name}.json");
    let path = cache.dir().join(&file_name);
    let miss = |state: &State| {
        state
            .counters
            .cache_get_misses
            .fetch_add(1, Ordering::Relaxed);
        Reply {
            expected: true,
            ..Reply::error(404, &format!("no cache entry {name}"))
        }
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return miss(state);
    };
    // Serve only a complete entry that maps back to this name — a
    // damaged or mis-filed file is indistinguishable from absent, the
    // same trust model as DiskCache::get.
    match entry_parse(&text) {
        Ok((key, _)) if key.file_name() == file_name => {
            state
                .counters
                .cache_get_hits
                .fetch_add(1, Ordering::Relaxed);
            Reply::json(200, text)
        }
        _ => miss(state),
    }
}

fn cache_put(name: &str, body: &str, state: &State) -> Reply {
    let cache = match cache_of(state) {
        Ok(c) => c,
        Err(reply) => return reply,
    };
    if !valid_key_name(name) {
        return Reply::error(400, &format!("invalid cache key {name:?}"));
    }
    if cache.is_readonly() {
        return Reply::error(403, "cache is read-only");
    }
    let file_name = format!("{name}.json");
    let (key, _cell) = match entry_parse(body) {
        Ok(parsed) => parsed,
        Err(e) => return Reply::error(400, &format!("body is not a cache entry: {e}")),
    };
    if key.file_name() != file_name {
        return Reply::error(
            400,
            &format!(
                "entry key maps to {:?}, not to the requested name {:?}",
                key.file_name(),
                file_name
            ),
        );
    }
    // Store the canonical serialization (== the validated body for every
    // entry our own tools produce).
    match write_entry_atomic(cache.dir(), &file_name, body) {
        Ok(()) => {
            state.counters.cache_puts.fetch_add(1, Ordering::Relaxed);
            Reply {
                status: 204,
                content_type: "application/json",
                body: String::new(),
                expected: false,
            }
        }
        Err(e) => Reply::error(500, &e.to_string()),
    }
}

/// A rejected `/solve` query string: the offending parameter plus the
/// human-readable reason. The reply carries a machine-readable `param`
/// field next to `error`, so a client can tell a typo'd knob
/// (`budget-ms` for `budget_ms`) from a bad value without parsing prose.
struct ParamError {
    param: String,
    message: String,
}

impl ParamError {
    fn new(param: &str, message: impl Into<String>) -> ParamError {
        ParamError {
            param: param.to_string(),
            message: message.into(),
        }
    }

    fn reply(&self) -> Reply {
        Reply::json(
            400,
            format!(
                "{{\n  \"format\": \"{ERROR_FORMAT}\",\n  \"status\": 400,\n  \
                 \"param\": \"{}\",\n  \"error\": \"{}\"\n}}\n",
                json::escape(&self.param),
                json::escape(&self.message)
            ),
        )
    }
}

/// Parse `/solve` query params into a solver name + [`SolveConfig`].
/// Unknown keys are rejected by name (the same strictness as the
/// instance-file schema: a typo'd knob must not silently run defaults),
/// and so are repeated keys — last-one-wins would make
/// `budget_ms=0&budget_ms=5000` mean whatever the client least expects.
fn solve_params(
    request: &Request,
    max_budget_ms: u64,
    max_improve_streams: u64,
) -> Result<(String, SolveConfig), ParamError> {
    let mut solver: Option<String> = None;
    let mut config = SolveConfig::default();
    let mut seen: Vec<String> = Vec::new();
    for (k, v) in request.query_pairs() {
        if seen.iter().any(|s| s == k) {
            return Err(ParamError::new(
                k,
                format!("duplicate query parameter {k:?}"),
            ));
        }
        seen.push(k.to_string());
        let bad = |msg: String| ParamError::new(k, msg);
        match k {
            "solver" => solver = Some(v.to_string()),
            "epsilon" => {
                config.epsilon = v.parse().map_err(|_| bad(format!("bad epsilon {v:?}")))?;
            }
            "k" => config.k = v.parse().map_err(|_| bad(format!("bad k {v:?}")))?,
            "shelf_r" => {
                config.shelf_r = v.parse().map_err(|_| bad(format!("bad shelf_r {v:?}")))?;
            }
            "strict" => {
                config.strict = v.parse().map_err(|_| bad(format!("bad strict {v:?}")))?;
            }
            "budget_ms" => {
                config.budget_ms = v.parse().map_err(|_| {
                    bad(format!(
                        "bad budget_ms {v:?} (want a whole number of milliseconds)"
                    ))
                })?;
            }
            "improve_seed" => {
                config.improve_seed = v.parse().map_err(|_| {
                    bad(format!("bad improve_seed {v:?} (want an unsigned integer)"))
                })?;
            }
            "improve_streams" => {
                config.improve_streams = v.parse().map_err(|_| {
                    bad(format!(
                        "bad improve_streams {v:?} (want a positive stream count)"
                    ))
                })?;
            }
            "improve_envelope" => {
                config.improve_envelope = v
                    .parse()
                    .map_err(|_| bad(format!("bad improve_envelope {v:?} (want true or false)")))?;
            }
            other => {
                return Err(ParamError::new(
                    other,
                    format!("unknown query parameter {other:?}"),
                ));
            }
        }
    }
    // Domain checks mirror the solver-side assertions (APTAS requires
    // ε > 0 and K ≥ 1, the online shelf requires r ∈ (0,1)) — a remote
    // request must become a 400, never a worker panic.
    if !config.epsilon.is_finite() || config.epsilon <= 0.0 {
        return Err(ParamError::new(
            "epsilon",
            format!("epsilon must be positive, got {}", config.epsilon),
        ));
    }
    if config.k < 1 {
        return Err(ParamError::new("k", "k must be at least 1"));
    }
    if !config.shelf_r.is_finite() || config.shelf_r <= 0.0 || config.shelf_r >= 1.0 {
        return Err(ParamError::new(
            "shelf_r",
            format!("shelf_r must be in (0, 1), got {}", config.shelf_r),
        ));
    }
    if config.budget_ms > max_budget_ms {
        return Err(ParamError::new(
            "budget_ms",
            format!(
                "budget_ms {} exceeds this server's cap of {max_budget_ms} ms",
                config.budget_ms
            ),
        ));
    }
    if config.improve_streams < 1 {
        return Err(ParamError::new(
            "improve_streams",
            "improve_streams must be at least 1",
        ));
    }
    if config.improve_streams > max_improve_streams {
        return Err(ParamError::new(
            "improve_streams",
            format!(
                "improve_streams {} exceeds this server's cap of {max_improve_streams}",
                config.improve_streams
            ),
        ));
    }
    let solver = solver.ok_or_else(|| {
        ParamError::new("solver", "missing required query parameter solver=<name>")
    })?;
    Ok((solver, config))
}

fn solve(request: &Request, state: &State) -> Reply {
    let cache = match cache_of(state) {
        Ok(c) => c,
        Err(reply) => return reply,
    };
    let (solver_name, config) =
        match solve_params(request, state.max_budget_ms, state.max_improve_streams) {
            Ok(p) => p,
            Err(e) => return e.reply(),
        };
    let solver = match state.registry.get_or_err(&solver_name) {
        Ok(s) => s,
        Err(e) => return Reply::error(400, &e.to_string()),
    };
    let prec = match spp_gen::fileio::from_json(&request.body) {
        Ok(p) => p,
        Err(e) => return Reply::error(400, &format!("body is not an spp-instance: {e}")),
    };
    let solve_request = SolveRequest::new(prec).with_config(config.clone());
    let jobs = [BatchJob::new("http", solve_request)];
    let solvers = vec![solver];
    // The engine's one pipeline: cache get → solve on miss → atomic put.
    let outcomes = match execute_cells(&jobs, &solvers, Some(cache)) {
        Ok(o) => o,
        Err(e) => return Reply::error(500, &e.to_string()),
    };
    let cell = &outcomes[0];
    let digest = cell
        .digest
        .expect("execute_cells computes digests whenever a cache is attached");
    if cell.from_cache {
        state
            .counters
            .solve_cache_hits
            .fetch_add(1, Ordering::Relaxed);
    } else {
        state.counters.solves.fetch_add(1, Ordering::Relaxed);
        // Improvement accounting belongs to fresh solves only: a cache
        // hit re-serves a result, it doesn't re-run the anytime loop.
        if let Some(Ok(report)) = &cell.outcome {
            if report.improve_rounds > 0 {
                state
                    .counters
                    .improve_iterations
                    .fetch_add(report.improve_rounds, Ordering::Relaxed);
            }
            if report.improve_streams > 0 {
                state
                    .counters
                    .improve_streams
                    .fetch_add(report.improve_streams, Ordering::Relaxed);
            }
            if report.improve_prunes > 0 {
                state
                    .counters
                    .improve_envelope_prunes
                    .fetch_add(report.improve_prunes, Ordering::Relaxed);
            }
            if report.improved() {
                state
                    .counters
                    .improved_cells
                    .fetch_add(1, Ordering::Relaxed);
                state.counters.add_gain(report.improve_gain());
            }
        }
    }
    // The report carries exactly the portable cell fields — deterministic
    // and byte-stable whether the cell was solved or served ("cached" is
    // informational, like ShardRuntime). Placements stay a local-CLI
    // concern: the cache can never reproduce them, and a service answer
    // that changes shape between cold and warm would break the engine's
    // byte-identity contract.
    let mut body = String::new();
    {
        use std::fmt::Write as _;
        body.push_str("{\n");
        let _ = writeln!(body, "  \"format\": \"{SOLVE_FORMAT}\",");
        let _ = writeln!(body, "  \"version\": 1,");
        let _ = writeln!(body, "  \"solver\": \"{}\",", json::escape(&solver_name));
        let _ = writeln!(body, "  \"instance\": \"{digest}\",");
        let _ = writeln!(
            body,
            "  \"config\": \"{}\",",
            json::escape(&config.signature())
        );
        let _ = writeln!(body, "  \"status\": \"{}\",", cell.status.as_str());
        let _ = writeln!(body, "  \"makespan\": {:.17e},", cell.makespan);
        let _ = writeln!(body, "  \"lb\": {:.17e},", cell.combined_lb);
        // Both a fresh improved solve and its later cache hits carry the
        // seed makespan, so this line is warm/cold byte-stable too.
        if let Some(seed) = cell.improved_from {
            let _ = writeln!(body, "  \"improved_from\": {seed:.17e},");
        }
        let _ = writeln!(body, "  \"cached\": {}", cell.from_cache);
        body.push_str("}\n");
    }
    Reply::json(200, body)
}

fn stats_reply(state: &State) -> Reply {
    let c = state.counters.snapshot();
    let mut body = String::new();
    {
        use std::fmt::Write as _;
        body.push_str("{\n");
        let _ = writeln!(body, "  \"format\": \"{STATS_FORMAT}\",");
        let _ = writeln!(body, "  \"version\": 1,");
        let _ = writeln!(
            body,
            "  \"uptime_secs\": {},",
            state.started.elapsed().as_secs()
        );
        let _ = writeln!(body, "  \"requests\": {},", c.requests);
        let _ = writeln!(body, "  \"cache_get_hits\": {},", c.cache_get_hits);
        let _ = writeln!(body, "  \"cache_get_misses\": {},", c.cache_get_misses);
        let _ = writeln!(body, "  \"cache_puts\": {},", c.cache_puts);
        let _ = writeln!(body, "  \"solves\": {},", c.solves);
        let _ = writeln!(body, "  \"solve_cache_hits\": {},", c.solve_cache_hits);
        // `rounds_per_stream` is derived (iterations over streams) so
        // operators can read search throughput without dividing.
        let rounds_per_stream = if c.improve_streams > 0 {
            c.improve_iterations as f64 / c.improve_streams as f64
        } else {
            0.0
        };
        let _ = writeln!(
            body,
            "  \"improve\": {{\"iterations\": {}, \"streams\": {}, \
             \"rounds_per_stream\": {:.17e}, \"improved_cells\": {}, \
             \"envelope_prunes\": {}, \"total_gain\": {:.17e}}},",
            c.improve_iterations,
            c.improve_streams,
            rounds_per_stream,
            c.improved_cells,
            c.improve_envelope_prunes,
            c.improve_total_gain
        );
        let _ = writeln!(body, "  \"errors\": {},", c.errors);
        let _ = writeln!(
            body,
            "  \"connections_accepted\": {},",
            c.connections_accepted
        );
        let _ = writeln!(body, "  \"keepalive_reuses\": {},", c.keepalive_reuses);
        let _ = writeln!(body, "  \"accept_failures\": {},", c.accept_failures);
        let _ = writeln!(
            body,
            "  \"max_requests_per_connection\": {},",
            c.max_requests_per_connection
        );
        let _ = writeln!(body, "  \"io_mode\": \"{}\",", state.io_mode.name());
        if let Some(shared) = &state.event {
            let ev = shared.counters.snapshot();
            let _ = writeln!(
                body,
                "  \"event\": {{\"parked_connections\": {}, \"wakeups\": {}, \
                 \"readiness_batches\": {}, \"eagain_retries\": {}, \"timer_expiries\": {}}},",
                ev.parked_connections,
                ev.wakeups,
                ev.readiness_batches,
                ev.eagain_retries,
                ev.timer_expiries
            );
        }
        let _ = writeln!(
            body,
            "  \"mean_requests_per_connection\": {:.2},",
            if c.connections_accepted == 0 {
                0.0
            } else {
                c.requests as f64 / c.connections_accepted as f64
            }
        );
        let lat = state.latency.snapshot();
        let us = |q: f64| lat.quantile(q) / 1000.0;
        let _ = writeln!(
            body,
            "  \"latency_us\": {{\"count\": {}, \"p50\": {:.1}, \"p95\": {:.1}, \
             \"p99\": {:.1}, \"p999\": {:.1}}},",
            lat.count(),
            us(0.50),
            us(0.95),
            us(0.99),
            us(0.999)
        );
        let ep = c.endpoints;
        let _ = writeln!(
            body,
            "  \"endpoints\": {{\"cache_get\": {}, \"cache_put\": {}, \"solve\": {}, \
             \"stats\": {}, \"work_lease\": {}, \"work_complete\": {}, \"work_status\": {}, \
             \"work_report\": {}, \"other\": {}}},",
            ep.cache_get,
            ep.cache_put,
            ep.solve,
            ep.stats,
            ep.work_lease,
            ep.work_complete,
            ep.work_status,
            ep.work_report,
            ep.other
        );
        if let Some(ws) = &state.work {
            let s = ws
                .queue
                .lock()
                .expect("work queue mutex poisoned")
                .status(Instant::now());
            let _ = writeln!(body, "  \"work_jobs\": {},", s.jobs);
            let _ = writeln!(body, "  \"work_chunks\": {},", s.chunks);
            let _ = writeln!(body, "  \"work_completed_chunks\": {},", s.completed_chunks);
            let _ = writeln!(body, "  \"work_leases\": {},", s.leases);
            let _ = writeln!(body, "  \"work_requeued\": {},", s.requeued);
            let _ = writeln!(body, "  \"work_done\": {},", s.done);
        }
        match &state.cache {
            Some(cache) => {
                let dir = match spp_engine::cache::dir_stats(cache.dir()) {
                    Ok(d) => d,
                    Err(e) => return Reply::error(500, &e.to_string()),
                };
                let stats: CacheStats = cache.stats();
                let _ = writeln!(
                    body,
                    "  \"solve_cache\": \"{}\",",
                    json::escape(&stats.to_string())
                );
                let _ = writeln!(body, "  \"entries\": {},", dir.entries);
                let _ = writeln!(body, "  \"corrupt\": {},", dir.corrupt);
                let _ = writeln!(body, "  \"bytes\": {},", dir.bytes);
                let _ = writeln!(body, "  \"instances\": {},", dir.instances);
                let _ = writeln!(body, "  \"configs\": {}", dir.configs);
            }
            None => {
                let _ = writeln!(body, "  \"cache_role\": false");
            }
        }
        body.push_str("}\n");
    }
    Reply::json(200, body)
}
