//! `ShardedCache` — one logical [`SolveCache`] spread across N
//! `spp serve --cache-dir` nodes by consistent hashing.
//!
//! The cache outgrew one disk (and one server's accept pool) before it
//! outgrew its wire format, so this backend adds **zero** new protocol:
//! every node is a stock cache server, and the fan-out lives entirely on
//! the client side of the [`SolveCache`] seam. Placement comes from
//! [`spp_core::hash::HashRing`]: each node's URL contributes 64 virtual
//! points, a key's FNV-1a hash (over its canonical file-name form — the
//! same string that names the entry on disk and in the URL space) walks
//! the ring, and the first R distinct nodes met are its replica set.
//! Adding a node therefore moves only ~1/N of the key space; the rest of
//! the fleet's warm entries stay exactly where they are.
//!
//! **Replication & read-repair.** `put` writes the entry to all R
//! replicas. `get` tries them in ring order and returns the first hit; a
//! hit found on a non-primary replica is re-put to the primary
//! (best-effort), so a key displaced by node churn — or recomputed while
//! its primary was down — migrates back to where future gets look first.
//!
//! **Node loss degrades, never errors.** An unreachable replica is
//! skipped on `get` (the next replica may hit; a full walk with no hit
//! is an ordinary miss — identical to [`HttpCache`]'s cold-cache
//! semantics) and tolerated on `put` as long as the entry landed on at
//! least one replica. Even *zero* reachable replicas only degrades the
//! put to a no-op (counted in [`ShardedCache::degraded_puts`]): a batch
//! run keeps producing byte-identical output on a dead fleet, it just
//! stops being warm. The one loud failure is a **live** replica
//! *refusing* a write (4xx/5xx — auth or config breakage): silence there
//! would hide a misconfiguration behind an eternally cold cache.

use std::sync::atomic::{AtomicU64, Ordering};

use spp_core::hash::{Fnv1a, HashRing};
use spp_engine::{CacheError, CacheKey, CacheStats, CachedCell, SolveCache};

use crate::client::{HttpCache, PutOutcome};

/// Default replication factor for `--cache-urls` fleets: each entry on
/// two nodes, so any single node loss leaves the whole key space warm.
pub const DEFAULT_REPLICATION: usize = 2;

/// A [`SolveCache`] consistent-hashed across N `spp serve` cache nodes.
pub struct ShardedCache {
    nodes: Vec<HttpCache>,
    ring: HashRing,
    /// Effective replication factor (clamped to `1..=nodes.len()`).
    replication: usize,
    readonly: bool,
    // Logical counters for the *sharded* view: one get is one hit or one
    // miss here no matter how many replicas were probed (the per-node
    // clients keep their own transport-level tallies).
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    rejected: AtomicU64,
    read_repairs: AtomicU64,
    degraded_puts: AtomicU64,
}

impl ShardedCache {
    /// Build the ring over `urls` (each `http://host:port`, each an
    /// `spp serve --cache-dir` node). `replication` is clamped to
    /// `1..=urls.len()`; `token` is attached to every request to every
    /// node (one shared secret per fleet).
    pub fn new(
        urls: &[String],
        replication: usize,
        readonly: bool,
        token: Option<String>,
    ) -> Result<ShardedCache, CacheError> {
        if urls.is_empty() {
            return Err(CacheError::Io {
                path: "--cache-urls".into(),
                err: "cache requires at least one URL".into(),
            });
        }
        let nodes = urls
            .iter()
            .map(|url| Ok(HttpCache::new(url, readonly)?.with_token(token.clone())))
            .collect::<Result<Vec<_>, CacheError>>()?;
        // Two ring positions backed by one server would silently halve
        // the real replication factor — refuse.
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[i + 1..] {
                if a.url().trim_end_matches('/') == b.url().trim_end_matches('/') {
                    return Err(CacheError::Io {
                        path: a.url().to_string(),
                        err: "duplicate cache URL: each ring node must be a distinct server".into(),
                    });
                }
            }
        }
        let labels: Vec<&str> = urls.iter().map(String::as_str).collect();
        Ok(ShardedCache {
            ring: HashRing::new(&labels),
            replication: replication.clamp(1, nodes.len()),
            nodes,
            readonly,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            read_repairs: AtomicU64::new(0),
            degraded_puts: AtomicU64::new(0),
        })
    }

    /// Number of nodes on the ring.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Effective replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Hits served from a non-primary replica that were re-put to the
    /// primary.
    pub fn read_repairs(&self) -> u64 {
        self.read_repairs.load(Ordering::Relaxed)
    }

    /// Puts that reached no replica at all (every one unreachable) and
    /// were absorbed as no-ops instead of failing the run.
    pub fn degraded_puts(&self) -> u64 {
        self.degraded_puts.load(Ordering::Relaxed)
    }

    /// Per-node `(url, stats)` in ring-label order — the transport-level
    /// view behind the aggregate [`SolveCache::stats`].
    pub fn per_node_stats(&self) -> Vec<(String, CacheStats)> {
        self.nodes
            .iter()
            .map(|n| (n.url().to_string(), n.stats()))
            .collect()
    }

    /// The key's replica set: indices into `self.nodes`, primary first.
    fn replicas(&self, key: &CacheKey) -> Vec<usize> {
        let hash = Fnv1a::hash(key.file_name().as_bytes());
        self.ring.successors(hash, self.replication)
    }
}

impl SolveCache for ShardedCache {
    fn get(&self, key: &CacheKey) -> Option<CachedCell> {
        let replicas = self.replicas(key);
        for (rank, &node) in replicas.iter().enumerate() {
            // An unreachable / cold / damaged replica is None here —
            // HttpCache already folds every failure mode into a miss —
            // so the walk simply continues to the next replica.
            if let Some(cell) = self.nodes[node].get(key) {
                if rank > 0 && !self.readonly {
                    // Read-repair: the primary was missing this entry
                    // (node churn, wiped disk, or it was down when the
                    // entry was computed). Re-put it so future gets hit
                    // on the first probe; best-effort — the repair
                    // failing must not turn a *hit* into anything else.
                    if matches!(
                        self.nodes[replicas[0]].put_classified(key, &cell),
                        PutOutcome::Written
                    ) {
                        self.read_repairs.fetch_add(1, Ordering::Relaxed);
                    }
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(cell);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn put(&self, key: &CacheKey, cell: &CachedCell) -> Result<(), CacheError> {
        if self.readonly {
            return Ok(());
        }
        let mut written = 0usize;
        let mut rejection: Option<CacheError> = None;
        for &node in &self.replicas(key) {
            match self.nodes[node].put_classified(key, cell) {
                PutOutcome::Written => written += 1,
                // Node loss: tolerated — the surviving replicas carry
                // the entry (or, with none left, the run degrades to a
                // cold cache, never to an error).
                PutOutcome::Unreachable(_) => {}
                PutOutcome::Rejected(e) => rejection = Some(e),
            }
        }
        if written == 0 {
            if let Some(e) = rejection {
                // Every replica failed and at least one was a *live*
                // server saying no: that is a misconfiguration (bad
                // token, readonly server, body mismatch), not node loss.
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
            self.degraded_puts.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urls(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("http://127.0.0.1:{}", 40000 + i))
            .collect()
    }

    #[test]
    fn construction_validates_urls_and_clamps_replication() {
        assert!(ShardedCache::new(&[], 2, false, None).is_err());
        assert!(ShardedCache::new(&["nonsense".into()], 2, false, None).is_err());
        let dup = vec![
            "http://127.0.0.1:40000".into(),
            "http://127.0.0.1:40000/".into(),
        ];
        assert!(ShardedCache::new(&dup, 2, false, None).is_err());

        let cache = ShardedCache::new(&urls(3), 0, false, None).unwrap();
        assert_eq!(cache.replication(), 1, "R=0 clamps up");
        let cache = ShardedCache::new(&urls(3), 9, false, None).unwrap();
        assert_eq!(cache.replication(), 3, "R>N clamps down");
        assert_eq!(cache.nodes(), 3);
    }

    #[test]
    fn replica_sets_are_stable_and_distinct() {
        let cache = ShardedCache::new(&urls(4), 2, false, None).unwrap();
        for i in 0..50 {
            let key = CacheKey {
                digest: spp_core::InstanceDigest::of_canonical_json(&format!("inst-{i}")),
                solver: "nfdh".into(),
                config_sig: "sig".into(),
            };
            let a = cache.replicas(&key);
            assert_eq!(a.len(), 2);
            assert_ne!(a[0], a[1]);
            assert_eq!(a, cache.replicas(&key), "placement must be deterministic");
        }
    }

    #[test]
    fn dead_fleet_degrades_to_cold_cache_not_errors() {
        // Ports in the reserved low range: connect fails fast, nothing
        // listens. get = miss, put = tolerated no-op.
        let dead = vec!["http://127.0.0.1:1".into(), "http://127.0.0.1:2".into()];
        let cache = ShardedCache::new(&dead, 2, false, None).unwrap();
        let key = CacheKey {
            digest: spp_core::InstanceDigest::of_canonical_json("dead"),
            solver: "nfdh".into(),
            config_sig: "sig".into(),
        };
        let cell = CachedCell {
            status: spp_engine::CellStatus::Solved,
            makespan: 1.0,
            combined_lb: 0.5,
            improved_from: None,
        };
        assert_eq!(cache.get(&key), None);
        assert!(cache.put(&key, &cell).is_ok(), "node loss must not error");
        assert_eq!(cache.degraded_puts(), 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().writes, 0);
    }
}
