//! `RemoteLease` — the network implementation of the engine's
//! [`WorkSource`] trait, speaking the `spp dispatch` work protocol.
//!
//! An `spp work` process runs the engine's one pull loop
//! ([`pull_work`](spp_engine::pull_work)) over a `RemoteLease` exactly
//! the way `run_sharded` runs it over a `LocalPlan`: lease a chunk of
//! instance files, execute its cells (through whatever [`SolveCache`]
//! the worker attached), report the portable rows back. The dispatcher
//! cannot tell local and remote pullers apart — which is the point of
//! the seam.
//!
//! Trust and failure model:
//!
//! * every dispatcher call rides this thread's **pooled keep-alive
//!   connection** ([`http::pooled_roundtrip`]) — a worker's whole
//!   lease/execute/complete loop is one TCP conversation, and a pooled
//!   socket the dispatcher closed between calls (idle timeout, request
//!   budget) is replaced transparently;
//! * every dispatcher call gets **one bounded retry**
//!   ([`http::roundtrip_retry`]) before its error stands — a dispatcher
//!   mid-GC or briefly saturated does not kill a worker;
//! * a persistent transport failure is a loud [`WorkError`] — a worker
//!   that cannot reach its dispatcher must say so and exit nonzero, not
//!   spin silently (the dispatcher requeues its outstanding lease at the
//!   deadline, so nothing is lost);
//! * completion is idempotent server-side — the queue remembers every
//!   granted lease id, so a retried completion whose first attempt was
//!   applied lands on the duplicate-ack path — which makes retrying
//!   `POST /work/complete` safe by construction;
//! * `POST /work/lease` is deliberately retried too, although a grant is
//!   not idempotent: if the first attempt's *response* is lost after the
//!   dispatcher granted a lease, that grant is simply orphaned and
//!   requeued at its deadline — exactly the killed-worker path the
//!   system already absorbs (and a cache hit on re-run). The cost of the
//!   rare orphan (one inflated `requeued` count) is much smaller than a
//!   worker dying on every transient blip of a busy dispatcher.
//!
//! [`SolveCache`]: spp_engine::SolveCache
//! [`WorkSource`]: spp_engine::WorkSource

use spp_engine::sharding::MergedReport;
use spp_engine::work::{complete_to_json, grant_parse, status_parse};
use spp_engine::{CellRow, LeaseGrant, WorkError, WorkSource, WorkStatus};

use crate::http;

/// A [`WorkSource`] served over HTTP by an `spp dispatch` process.
pub struct RemoteLease {
    /// `host:port` of the dispatcher.
    authority: String,
    /// Base URL as given (for error messages).
    url: String,
    /// Bearer token attached to every request when the dispatcher runs
    /// with `--token-file`.
    token: Option<String>,
}

impl RemoteLease {
    /// Parse a base URL of the form `http://host:port` (same rules as
    /// the cache client: no path, explicit port).
    pub fn new(url: &str) -> Result<RemoteLease, WorkError> {
        let authority = http::parse_base_url(url).map_err(|err| WorkError::Protocol {
            context: url.to_string(),
            err: format!("dispatcher {err}"),
        })?;
        Ok(RemoteLease {
            authority,
            url: url.to_string(),
            token: None,
        })
    }

    /// Attach a bearer token sent with every dispatcher call — required
    /// when the dispatcher runs with `--token-file`.
    pub fn with_token(mut self, token: Option<String>) -> RemoteLease {
        self.token = token;
        self
    }

    /// The base URL this client targets.
    pub fn url(&self) -> &str {
        &self.url
    }

    fn call(&self, method: &str, path: &str, body: &str) -> Result<http::Response, WorkError> {
        http::roundtrip_retry_auth(&self.authority, method, path, body, self.token.as_deref())
            .map_err(|e| WorkError::Protocol {
                context: format!("{} {path}", self.url),
                err: e.to_string(),
            })
    }

    fn expect_200(&self, path: &str, response: http::Response) -> Result<String, WorkError> {
        if response.status != 200 {
            return Err(WorkError::Protocol {
                context: format!("{} {path}", self.url),
                err: format!("HTTP {}: {}", response.status, response.body.trim()),
            });
        }
        Ok(response.body)
    }

    /// The merged report, once the dispatcher reports every chunk
    /// complete (`Err` with the dispatcher's 409 message before that) —
    /// what the thin `spp batch --dispatcher-url` client renders.
    pub fn fetch_report(&self) -> Result<MergedReport, WorkError> {
        let body = self.call("GET", "/work/report", "")?;
        let body = self.expect_200("/work/report", body)?;
        MergedReport::parse(&body).map_err(|e| WorkError::Protocol {
            context: format!("{} /work/report", self.url),
            err: e.to_string(),
        })
    }
}

impl WorkSource for RemoteLease {
    fn lease(&self) -> Result<LeaseGrant, WorkError> {
        let response = self.call("POST", "/work/lease", "")?;
        let body = self.expect_200("/work/lease", response)?;
        grant_parse(&body)
    }

    fn complete(&self, lease_id: u64, start: usize, cells: &[CellRow]) -> Result<(), WorkError> {
        let body = complete_to_json(lease_id, start, cells);
        let response = self.call("POST", "/work/complete", &body)?;
        self.expect_200("/work/complete", response).map(|_| ())
    }

    fn progress(&self) -> Result<WorkStatus, WorkError> {
        let response = self.call("GET", "/work/status", "")?;
        let body = self.expect_200("/work/status", response)?;
        status_parse(&body)
    }

    // abort(): default no-op — a remote worker's failure is local to it;
    // the dispatcher requeues its lease at the deadline.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_matches_the_cache_client_rules() {
        assert!(RemoteLease::new("http://127.0.0.1:8080").is_ok());
        assert!(RemoteLease::new("http://localhost:9000/").is_ok());
        for bad in [
            "127.0.0.1:8080",
            "https://127.0.0.1:8080",
            "http://127.0.0.1",
            "http://127.0.0.1:x",
            "http://127.0.0.1:80/work",
            "http://",
        ] {
            assert!(RemoteLease::new(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn unreachable_dispatcher_is_a_loud_error() {
        let remote = RemoteLease::new("http://127.0.0.1:1").unwrap();
        let err = remote.lease().unwrap_err();
        assert!(matches!(err, WorkError::Protocol { .. }), "{err:?}");
        assert!(remote.progress().is_err());
        assert!(remote.complete(1, 0, &[]).is_err());
        assert!(remote.fetch_report().is_err());
    }
}
