//! In-process tests of the dispatcher role: `RemoteLease` pullers drain
//! a served `WorkQueue` through the engine's one pull loop, the merged
//! report is byte-identical to a local `run_sharded`, expired leases
//! requeue, and completion stays idempotent over the wire.

use std::path::PathBuf;
use std::time::Duration;

use spp_engine::work::{execute_lease, pull_work};
use spp_engine::{
    run_sharded, LeaseGrant, Registry, ShardPlan, SolveConfig, Solver, WorkQueue, WorkSource,
};
use spp_serve::http::roundtrip;
use spp_serve::{RemoteLease, ServeConfig, Server};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spp_dispatch_test_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn solvers(names: &[&str]) -> Vec<Box<dyn Solver>> {
    let registry = Registry::builtin();
    names.iter().map(|n| registry.get(n).unwrap()).collect()
}

const ALGOS: [&str; 3] = ["nfdh", "ffdh", "greedy"];

fn queue_over(suite: &std::path::Path, lease_files: usize, timeout: Option<Duration>) -> WorkQueue {
    let plan = ShardPlan::from_dir(suite, 1).unwrap();
    WorkQueue::new(
        plan.paths().to_vec(),
        ALGOS.iter().map(|s| s.to_string()).collect(),
        SolveConfig::default(),
        spp_engine::work::chunk_ranges(plan.len(), lease_files),
        timeout,
    )
}

/// Run one `spp work`-shaped puller against a dispatcher URL: resolve
/// the solver names each lease names, execute through the engine
/// pipeline, report back.
fn pull_remote(url: &str) {
    let source = RemoteLease::new(url).unwrap();
    let registry = Registry::builtin();
    let execute = |lease: &spp_engine::WorkLease| {
        let solvers: Vec<Box<dyn Solver>> = lease
            .solvers
            .iter()
            .map(|n| registry.get(n).expect("dispatcher names a known solver"))
            .collect();
        execute_lease(lease, &solvers, None)
    };
    pull_work(&source, &execute, None, Duration::from_millis(20)).unwrap();
}

#[test]
fn remote_pullers_reproduce_the_local_run_byte_for_byte() {
    let suite = tmp("equiv");
    spp_gen::suite::write_suite(&suite, 23, 10, 9).unwrap();

    // Reference: the in-process pull-based driver over the same files.
    let reference = run_sharded(
        &ShardPlan::from_dir(&suite, 3).unwrap(),
        &solvers(&ALGOS),
        &SolveConfig::default(),
        None,
        None,
    )
    .unwrap();

    // Dispatcher with 2-file leases, no cache role.
    let server = Server::bind_with_work(
        &ServeConfig::without_cache(),
        Some(queue_over(&suite, 2, None)),
    )
    .unwrap()
    .spawn();
    let url = server.url();

    // Before anyone completes anything the report poll is a clean 409.
    let authority = server.authority();
    let r = roundtrip(&authority, "GET", "/work/report", "").unwrap();
    assert_eq!(r.status, 409, "{}", r.body);

    // Three concurrent pullers drain the queue.
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| pull_remote(&url));
        }
    });

    let remote = RemoteLease::new(&url).unwrap();
    let status = remote.progress().unwrap();
    assert!(status.done);
    assert_eq!(status.jobs, 9);
    assert_eq!(status.requeued, 0);
    assert_eq!(remote.lease().unwrap(), LeaseGrant::Done);

    // The dispatcher's merged report is byte-identical to the local run.
    let merged = remote.fetch_report().unwrap();
    assert_eq!(merged.cells, reference.cells);
    assert_eq!(merged.render_table(), reference.render_table());
    assert_eq!(merged.render_cells(), reference.render_cells());

    // /stats shows the dispatcher role: uptime, per-endpoint counters
    // with lease/complete included, queue progress; no cache role.
    let stats = roundtrip(&authority, "GET", "/stats", "").unwrap();
    assert_eq!(stats.status, 200);
    for needle in [
        "\"uptime_secs\":",
        "\"work_lease\":",
        "\"work_complete\":",
        "\"work_done\": true",
        "\"work_requeued\": 0",
        "\"cache_role\": false",
    ] {
        assert!(
            stats.body.contains(needle),
            "missing {needle}: {}",
            stats.body
        );
    }
    // And the cache endpoints answer a clean 404 on this role-less server.
    let r = roundtrip(&authority, "GET", "/cache/abc", "").unwrap();
    assert_eq!(r.status, 404);
    assert!(r.body.contains("no cache role"), "{}", r.body);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&suite);
}

#[test]
fn expired_leases_requeue_and_duplicate_completions_are_acknowledged() {
    let suite = tmp("requeue");
    spp_gen::suite::write_suite(&suite, 5, 8, 4).unwrap();
    let timeout = Duration::from_millis(300);
    let server = Server::bind_with_work(
        &ServeConfig::without_cache(),
        Some(queue_over(&suite, 1, Some(timeout))),
    )
    .unwrap()
    .spawn();
    let url = server.url();
    let remote = RemoteLease::new(&url).unwrap();

    // A doomed worker takes one lease and never completes it.
    let LeaseGrant::Work(abandoned) = remote.lease().unwrap() else {
        panic!("expected work");
    };

    // Its lease expires; a surviving puller then drains everything,
    // including the requeued chunk.
    std::thread::sleep(timeout + Duration::from_millis(50));
    pull_remote(&url);
    let status = remote.progress().unwrap();
    assert!(status.done, "{status:?}");
    assert_eq!(status.requeued, 1, "{status:?}");

    // The doomed worker completes late anyway: its cells match the
    // chunk, so the dispatcher acknowledges the duplicate (200), and
    // nothing is double-counted in the merged report.
    let registry = Registry::builtin();
    let late_solvers: Vec<Box<dyn Solver>> = abandoned
        .solvers
        .iter()
        .map(|n| registry.get(n).unwrap())
        .collect();
    let (cells, _) = execute_lease(&abandoned, &late_solvers, None).unwrap();
    remote
        .complete(abandoned.id, abandoned.start, &cells)
        .unwrap();
    assert_eq!(remote.progress().unwrap().duplicates, 1);
    let merged = remote.fetch_report().unwrap();
    assert_eq!(merged.cells.len(), 4 * ALGOS.len());

    // A lease id the dispatcher never granted is a 409, distinct from a
    // malformed body's 400.
    let bogus = spp_engine::work::complete_to_json(999, 0, &[]);
    let r = roundtrip(&server.authority(), "POST", "/work/complete", &bogus).unwrap();
    assert_eq!(r.status, 409, "{}", r.body);
    let r = roundtrip(&server.authority(), "POST", "/work/complete", "junk").unwrap();
    assert_eq!(r.status, 400, "{}", r.body);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&suite);
}

#[test]
fn dispatcher_and_cache_roles_compose_in_one_server() {
    let suite = tmp("bothroles_suite");
    spp_gen::suite::write_suite(&suite, 31, 8, 4).unwrap();
    let cache_dir = tmp("bothroles_cache");
    let mut config = ServeConfig::new(&cache_dir);
    config.workers = 4;
    let server = Server::bind_with_work(&config, Some(queue_over(&suite, 2, None)))
        .unwrap()
        .spawn();
    let url = server.url();

    // A worker that leases from the server AND publishes its cells into
    // the same server's cache — the collapsed one-process topology.
    let source = RemoteLease::new(&url).unwrap();
    let cache = spp_serve::HttpCache::new(&url, false).unwrap();
    let registry = Registry::builtin();
    let execute = |lease: &spp_engine::WorkLease| {
        let solvers: Vec<Box<dyn Solver>> = lease
            .solvers
            .iter()
            .map(|n| registry.get(n).unwrap())
            .collect();
        execute_lease(lease, &solvers, Some(&cache))
    };
    pull_work(&source, &execute, None, Duration::from_millis(20)).unwrap();

    assert!(source.progress().unwrap().done);
    let merged = source.fetch_report().unwrap();
    assert_eq!(merged.cells.len(), 4 * ALGOS.len());
    // Every cell the workers computed landed in the shared cache.
    assert_eq!(
        spp_engine::cache::dir_stats(&cache_dir).unwrap().entries,
        merged.cells.len()
    );

    server.shutdown();
    for d in [suite, cache_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
