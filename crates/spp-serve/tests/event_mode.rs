//! Integration tests of `--io-mode event` (Linux only): the epoll
//! multiplexer must keep the exact request/response semantics of the
//! blocking pool — pipelined bytes buffered before a park survive the
//! resume, a heavy pipeliner cannot starve other clients past the
//! per-turn cap, idle connections cost zero workers, the slowloris
//! guard closes trickling clients with a 408, and `/stats` exposes the
//! event-loop counters.
#![cfg(target_os = "linux")]

use spp_serve::http::{read_response, RecvBuf, Response};
use spp_serve::{IoMode, ServeConfig, Server, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spp_event_test_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_event(tag: &str, tune: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let dir = tmp(tag);
    let mut config = ServeConfig::new(&dir);
    config.workers = 4;
    config.io_mode = IoMode::Event;
    tune(&mut config);
    let server = Server::bind(&config).unwrap();
    assert_eq!(server.io_mode(), IoMode::Event, "epoll path not taken");
    server.spawn()
}

fn connect(authority: &str) -> TcpStream {
    let stream = TcpStream::connect(authority).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn send_stats_requests(stream: &mut TcpStream, n: usize) {
    let one = "GET /stats HTTP/1.1\r\nhost: bench\r\n\r\n";
    let burst = one.repeat(n);
    stream.write_all(burst.as_bytes()).unwrap();
    stream.flush().unwrap();
}

/// Three requests written in one TCP segment against a server whose
/// per-turn cap is 1: the connection parks after every response with
/// the rest of the burst still in its userspace `RecvBuf`, so each
/// resume must pick up exactly where the buffer left off.
#[test]
fn pipelined_bytes_buffered_before_park_survive_resume() {
    let server = start_event("pipeline_park", |c| {
        c.turn_requests = 1;
        c.keepalive_requests = 64;
    });
    let mut stream = connect(&server.authority());
    send_stats_requests(&mut stream, 3);
    let mut buf = RecvBuf::new();
    for i in 0..3 {
        let r = read_response(&stream, &mut buf).unwrap();
        assert_eq!(r.status, 200, "pipelined response {i}");
        assert!(r.body.contains("\"io_mode\": \"event\""), "{}", r.body);
    }
    drop(stream);
    server.shutdown();
}

/// With one worker and a per-turn cap of 2, a client that pipelines
/// ten requests must not monopolize the worker: a second client's
/// single request is answered while the pipeliner is still being
/// drained in capped turns.
#[test]
fn heavy_pipeliner_cannot_starve_a_second_client() {
    let server = start_event("fairness", |c| {
        c.workers = 1;
        c.turn_requests = 2;
        c.keepalive_requests = 64;
    });
    let authority = server.authority();

    let mut heavy = connect(&authority);
    send_stats_requests(&mut heavy, 10);

    let mut light = connect(&authority);
    light
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    send_stats_requests(&mut light, 1);
    let started = Instant::now();
    let mut light_buf = RecvBuf::new();
    let r = read_response(&light, &mut light_buf).unwrap();
    assert_eq!(r.status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "second client starved for {:?}",
        started.elapsed()
    );

    // The pipeliner still gets everything it asked for.
    let mut heavy_buf = RecvBuf::new();
    for i in 0..10 {
        let r = read_response(&heavy, &mut heavy_buf).unwrap();
        assert_eq!(r.status, 200, "pipelined response {i}");
    }
    drop(heavy);
    drop(light);
    server.shutdown();
}

/// The tentpole property in miniature: connections that never send a
/// byte park on the event loop, so a single-worker server stays fully
/// responsive behind a crowd of idle clients. (The blocking pool would
/// dedicate its one worker to idle-waiting on the first of them.)
#[test]
fn idle_connections_cost_zero_workers() {
    let server = start_event("idle_free", |c| {
        c.workers = 1;
        c.idle_timeout = Duration::from_secs(30);
    });
    let authority = server.authority();

    let idle: Vec<TcpStream> = (0..20).map(|_| connect(&authority)).collect();
    // Let the loop accept and park the whole fleet.
    std::thread::sleep(Duration::from_millis(100));

    let mut live = connect(&authority);
    send_stats_requests(&mut live, 1);
    let mut buf = RecvBuf::new();
    let r = read_response(&live, &mut buf).unwrap();
    assert_eq!(r.status, 200);
    let parked = stat_u64(&r.body, "parked_connections");
    assert!(parked >= 20, "expected the idle fleet parked, got {parked}");

    drop(idle);
    drop(live);
    server.shutdown();
}

/// Slowloris guard: a client trickling an incomplete request header is
/// closed with `408 Request Timeout` once the whole-message deadline
/// expires — it cannot hold a worker hostage byte by byte.
#[test]
fn trickling_client_gets_408_in_event_mode() {
    let server = start_event("slowloris_event", |c| {
        c.header_timeout = Duration::from_millis(300);
    });
    assert_trickler_rejected(&server.authority());
    server.shutdown();
}

/// The same guard holds in the blocking pool (`--io-mode blocking`).
#[test]
fn trickling_client_gets_408_in_blocking_mode() {
    let dir = tmp("slowloris_blocking");
    let mut config = ServeConfig::new(&dir);
    config.workers = 4;
    config.io_mode = IoMode::Blocking;
    config.header_timeout = Duration::from_millis(300);
    let server = Server::bind(&config).unwrap().spawn();
    assert_trickler_rejected(&server.authority());
    server.shutdown();
}

fn assert_trickler_rejected(authority: &str) {
    let mut trickler = connect(authority);
    // A few bytes inside the deadline window, then silence: the clock
    // armed at the first byte keeps running (the http-layer unit test
    // proves trickling never resets it) and expires mid-header.
    for &b in b"GET " {
        trickler.write_all(&[b]).unwrap();
        trickler.flush().unwrap();
        std::thread::sleep(Duration::from_millis(40));
    }
    let mut buf = RecvBuf::new();
    let r = read_response(&trickler, &mut buf).unwrap();
    assert_eq!(r.status, 408, "{}", r.body);
    assert!(r.close, "a timed-out connection must be closed");

    // A well-behaved client on the same server is unaffected.
    let mut fine = connect(authority);
    send_stats_requests(&mut fine, 1);
    let mut fine_buf = RecvBuf::new();
    assert_eq!(read_response(&fine, &mut fine_buf).unwrap().status, 200);
}

/// `/stats` reports the event-loop counters, and they move: serving
/// keep-alive requests with a think-time gap forces park/resume cycles
/// that show up as wakeups, readiness batches, and parse retries.
#[test]
fn stats_exposes_live_event_counters() {
    let server = start_event("stats_counters", |c| {
        c.keepalive_requests = 64;
    });
    let mut stream = connect(&server.authority());
    let mut buf = RecvBuf::new();
    let mut last = Response {
        status: 0,
        body: String::new(),
        close: false,
    };
    for _ in 0..3 {
        send_stats_requests(&mut stream, 1);
        last = read_response(&stream, &mut buf).unwrap();
        assert_eq!(last.status, 200);
        // Idle gap: the connection parks and must be woken by epoll.
        std::thread::sleep(Duration::from_millis(30));
    }
    assert!(
        last.body.contains("\"io_mode\": \"event\""),
        "{}",
        last.body
    );
    assert!(stat_u64(&last.body, "wakeups") > 0, "{}", last.body);
    assert!(
        stat_u64(&last.body, "readiness_batches") > 0,
        "{}",
        last.body
    );
    assert!(stat_u64(&last.body, "eagain_retries") > 0, "{}", last.body);
    for gauge in ["parked_connections", "timer_expiries"] {
        // Present even when zero.
        let _ = stat_u64(&last.body, gauge);
    }
    drop(stream);
    server.shutdown();
}

/// Extract `"name": <n>` from the `/stats` JSON body.
fn stat_u64(body: &str, name: &str) -> u64 {
    let tag = format!("\"{name}\": ");
    let at = body
        .find(&tag)
        .unwrap_or_else(|| panic!("no {name:?} in {body}"));
    body[at + tag.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {name:?} in {body}"))
}
