//! In-process tests of the `spp serve` service: endpoint contracts,
//! error paths, and the property that justifies `HttpCache` — the HTTP
//! backend agrees cell-for-cell with a local `DiskCache` on the same
//! workload (mirroring the memory/disk agreement test in
//! `spp-engine/tests/cache_correctness.rs`).

use spp_engine::cache::{entry_parse, entry_to_json, CacheKey, CachedCell};
use spp_engine::{
    execute_cells, BatchJob, CellStatus, DiskCache, Registry, ShardPlan, SolveCache, SolveConfig,
    SolveRequest, Solver,
};
use spp_serve::http::roundtrip;
use spp_serve::{HttpCache, ServeConfig, Server};
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spp_serve_test_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn solvers(names: &[&str]) -> Vec<Box<dyn Solver>> {
    let registry = Registry::builtin();
    names.iter().map(|n| registry.get(n).unwrap()).collect()
}

fn key(tag: &str) -> CacheKey {
    CacheKey {
        digest: spp_core::InstanceDigest::of_canonical_json(tag),
        solver: "nfdh".into(),
        config_sig: SolveConfig::default().signature(),
    }
}

fn cell(makespan: f64) -> CachedCell {
    CachedCell {
        status: CellStatus::Solved,
        makespan,
        combined_lb: makespan / 2.0,
        improved_from: None,
    }
}

fn start(tag: &str, readonly: bool) -> (spp_serve::ServerHandle, PathBuf) {
    let dir = tmp(tag);
    if readonly {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut config = ServeConfig::new(&dir);
    config.workers = 4;
    config.readonly = readonly;
    let server = Server::bind(&config).unwrap();
    (server.spawn(), dir)
}

#[test]
fn cache_endpoints_roundtrip_and_validate() {
    let (server, dir) = start("cache_endpoints", false);
    let authority = server.authority();
    let k = key("a");
    let stem = k.file_name();
    let stem = stem.strip_suffix(".json").unwrap();
    let body = entry_to_json(&k, &cell(4.5));

    // Missing entry: 404 with a structured error body.
    let r = roundtrip(&authority, "GET", &format!("/cache/{stem}"), "").unwrap();
    assert_eq!(r.status, 404);
    assert!(r.body.contains("spp-serve-error"), "{}", r.body);

    // PUT publishes; GET returns the exact bytes.
    let r = roundtrip(&authority, "PUT", &format!("/cache/{stem}"), &body).unwrap();
    assert_eq!(r.status, 204, "{}", r.body);
    let r = roundtrip(&authority, "GET", &format!("/cache/{stem}"), "").unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.body, body);
    // And the entry landed as a real DiskCache-servable file.
    let local = DiskCache::new(&dir, true).unwrap();
    assert_eq!(local.get(&k), Some(cell(4.5)));

    // A PUT whose body is keyed to a different name is refused — no
    // client can plant a mis-filed entry.
    let other = key("b");
    let r = roundtrip(
        &authority,
        "PUT",
        &format!("/cache/{stem}"),
        &entry_to_json(&other, &cell(1.0)),
    )
    .unwrap();
    assert_eq!(r.status, 400);
    // Garbage bodies are refused too.
    let r = roundtrip(&authority, "PUT", &format!("/cache/{stem}"), "junk").unwrap();
    assert_eq!(r.status, 400);
    // Path traversal and non-key names never reach the filesystem.
    for bad in ["..", "a.json", "x/y", "UPPER", ""] {
        let r = roundtrip(&authority, "GET", &format!("/cache/{bad}"), "").unwrap();
        assert!(
            r.status == 400 || r.status == 404,
            "{bad:?} gave {}",
            r.status
        );
    }
    // Damaged on-disk entries are 404, never served.
    std::fs::write(dir.join(k.file_name()), "garbage").unwrap();
    let r = roundtrip(&authority, "GET", &format!("/cache/{stem}"), "").unwrap();
    assert_eq!(r.status, 404);

    // Unknown endpoints and bad methods are named.
    let r = roundtrip(&authority, "GET", "/nope", "").unwrap();
    assert_eq!(r.status, 404);
    let r = roundtrip(&authority, "PATCH", "/cache/abc", "").unwrap();
    assert_eq!(r.status, 405);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readonly_server_refuses_puts_but_serves_gets() {
    let seed_dir = tmp("readonly_seed");
    let seeder = DiskCache::new(&seed_dir, false).unwrap();
    seeder.put(&key("a"), &cell(2.0)).unwrap();

    let mut config = ServeConfig::new(&seed_dir);
    config.workers = 2;
    config.readonly = true;
    let server = Server::bind(&config).unwrap().spawn();
    let authority = server.authority();
    let stem_owned = key("a").file_name();
    let stem = stem_owned.strip_suffix(".json").unwrap();

    let r = roundtrip(&authority, "GET", &format!("/cache/{stem}"), "").unwrap();
    assert_eq!(r.status, 200);
    let r = roundtrip(
        &authority,
        "PUT",
        &format!("/cache/{stem}"),
        &entry_to_json(&key("a"), &cell(2.0)),
    )
    .unwrap();
    assert_eq!(r.status, 403);

    // An HttpCache client pointed at a read-only server still works as a
    // read-through cache (its own puts error loudly unless it too is
    // read-only).
    let client = HttpCache::new(&server.url(), true).unwrap();
    assert_eq!(client.get(&key("a")), Some(cell(2.0)));
    assert!(client.put(&key("b"), &cell(1.0)).is_ok()); // no-op
    assert!(client.get(&key("b")).is_none());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&seed_dir);
}

#[test]
fn solve_endpoint_solves_then_serves_from_cache() {
    let (server, dir) = start("solve", false);
    let authority = server.authority();
    let inst = spp_core::Instance::from_dims(&[(0.5, 1.0), (0.4, 0.7), (0.9, 0.2)]).unwrap();
    let prec = spp_dag::PrecInstance::unconstrained(inst);
    let body = spp_gen::fileio::to_json(&prec);

    let cold = roundtrip(&authority, "POST", "/solve?solver=nfdh", &body).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert!(cold.body.contains("\"format\": \"spp-solve-report\""));
    assert!(cold.body.contains("\"cached\": false"));
    assert!(cold.body.contains("\"status\": \"solved\""));

    let warm = roundtrip(&authority, "POST", "/solve?solver=nfdh", &body).unwrap();
    assert_eq!(warm.status, 200);
    assert!(warm.body.contains("\"cached\": true"));
    // Identical apart from the informational cached flag.
    assert_eq!(
        cold.body.replace("\"cached\": false", "\"cached\": true"),
        warm.body
    );
    // The portable fields agree bit-for-bit with a local engine solve.
    let report = spp_engine::solve(
        solvers(&["nfdh"])[0].as_ref(),
        &SolveRequest::new(spp_gen::fileio::from_json(&body).unwrap()),
    )
    .unwrap();
    assert!(cold.body.contains(&format!("{:.17e}", report.makespan)));

    // Config params key separate cells; unknown/malformed ones are named.
    let tighter = roundtrip(&authority, "POST", "/solve?solver=nfdh&epsilon=0.25", &body).unwrap();
    assert_eq!(tighter.status, 200);
    assert!(tighter.body.contains("\"cached\": false"));
    for (bad, needle) in [
        ("/solve", "solver"),                        // missing solver
        ("/solve?solver=not-a-solver", "unknown"),   // unknown solver
        ("/solve?solver=nfdh&wat=1", "wat"),         // unknown param
        ("/solve?solver=nfdh&epsilon=x", "epsilon"), // malformed value
        // Out-of-domain knobs are 400s, never solver-side assertion
        // panics that would kill a pool worker.
        ("/solve?solver=aptas&epsilon=0", "epsilon"),
        ("/solve?solver=aptas&epsilon=-1", "epsilon"),
        ("/solve?solver=aptas&k=0", "k"),
        ("/solve?solver=online-shelf&shelf_r=1.5", "shelf_r"),
    ] {
        let r = roundtrip(&authority, "POST", bad, &body).unwrap();
        assert_eq!(r.status, 400, "{bad}");
        assert!(r.body.contains(needle), "{bad}: {}", r.body);
    }
    // A malformed instance body names field and line.
    let r = roundtrip(&authority, "POST", "/solve?solver=nfdh", "{\"format\": 3}").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("format"), "{}", r.body);

    // /stats reflects it all.
    let r = roundtrip(&authority, "GET", "/stats", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.contains("\"format\": \"spp-serve-stats\""));
    assert!(r.body.contains("\"solves\": 2"), "{}", r.body);
    assert!(r.body.contains("\"solve_cache_hits\": 1"), "{}", r.body);
    assert!(r.body.contains("\"entries\": 2"), "{}", r.body);
    let counters = server.counters();
    assert_eq!(counters.solves, 2);
    assert_eq!(counters.solve_cache_hits, 1);
    assert!(counters.errors >= 9);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The anytime surface of `POST /solve`: a budgeted request runs the
/// improvement loop, reports `improved_from`, and shows up in the
/// `/stats` improvement counters; the cached entry keeps the improved
/// result so warm replies stay byte-identical; and every malformed
/// budget parameter — including the classic `budget-ms` typo for
/// `budget_ms` — is a structured 400 naming the offending parameter.
#[test]
fn budgeted_solve_improves_and_rejects_bad_budget_params() {
    let (server, dir) = start("solve_budget", false);
    let authority = server.authority();
    // Four half-width items whose NFDH shelf seed wastes height: shelves
    // give 1.5, while the improvement decode's first (identity-order)
    // skyline pass packs the two columns as 1.0+0.45 / 0.55+0.5 = 1.45.
    // The gain arrives in round 0, so any positive budget finds it —
    // the assertion never races the wall clock.
    let inst =
        spp_core::Instance::from_dims(&[(0.5, 1.0), (0.5, 0.55), (0.5, 0.5), (0.5, 0.45)]).unwrap();
    let prec = spp_dag::PrecInstance::unconstrained(inst);
    let body = spp_gen::fileio::to_json(&prec);

    let path = "/solve?solver=nfdh&budget_ms=2000";
    let cold = roundtrip(&authority, "POST", path, &body).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert!(cold.body.contains("\"cached\": false"));
    assert!(
        cold.body.contains("\"improved_from\": 1.5"),
        "{}",
        cold.body
    );
    assert!(
        cold.body.contains("\"makespan\": 1.44999999999999996e0"),
        "{}",
        cold.body
    );

    // Warm: the improved entry is served back, byte-identical apart from
    // the informational cached flag — improved_from included.
    let warm = roundtrip(&authority, "POST", path, &body).unwrap();
    assert_eq!(warm.status, 200);
    assert!(warm.body.contains("\"cached\": true"));
    assert_eq!(
        cold.body.replace("\"cached\": false", "\"cached\": true"),
        warm.body
    );

    // /stats carries the improvement counters.
    let r = roundtrip(&authority, "GET", "/stats", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.contains("\"improved_cells\": 1"), "{}", r.body);
    let counters = server.counters();
    assert_eq!(counters.improved_cells, 1);
    assert!(counters.improve_iterations >= 1);
    assert!(counters.improve_total_gain > 0.04);

    // Malformed budget parameters are structured 400s that name the
    // parameter in a machine-readable field.
    for (bad, param) in [
        ("/solve?solver=nfdh&budget-ms=100", "budget-ms"), // typo'd name
        ("/solve?solver=nfdh&budget_ms=abc", "budget_ms"), // malformed value
        ("/solve?solver=nfdh&budget_ms=-5", "budget_ms"),  // bad domain
        ("/solve?solver=nfdh&budget_ms=999999999", "budget_ms"), // over the server cap
        ("/solve?solver=nfdh&budget_ms=5&budget_ms=9", "budget_ms"), // duplicate
        ("/solve?solver=nfdh&improve_seed=x", "improve_seed"), // malformed seed
        ("/solve?solver=nfdh&improve_streams=0", "improve_streams"), // zero-width portfolio
        ("/solve?solver=nfdh&improve_streams=x", "improve_streams"), // malformed width
        ("/solve?solver=nfdh&improve_streams=-2", "improve_streams"), // bad domain
        ("/solve?solver=nfdh&improve_streams=9999", "improve_streams"), // over the server cap
        (
            "/solve?solver=nfdh&improve_envelope=maybe",
            "improve_envelope",
        ), // not a bool
    ] {
        let r = roundtrip(&authority, "POST", bad, &body).unwrap();
        assert_eq!(r.status, 400, "{bad}: {}", r.body);
        assert!(
            r.body.contains(&format!("\"param\": \"{param}\"")),
            "{bad}: {}",
            r.body
        );
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The portfolio surface of `POST /solve`: `improve_streams=K` runs K
/// search streams, the `/stats` improve object reports the stream count
/// and derived rounds-per-stream, and the result is byte-identical to a
/// re-solve at the same width (deterministic reduction).
#[test]
fn portfolio_solve_reports_streams_in_stats() {
    let (server, dir) = start("solve_portfolio", false);
    let authority = server.authority();
    let inst =
        spp_core::Instance::from_dims(&[(0.5, 1.0), (0.5, 0.55), (0.5, 0.5), (0.5, 0.45)]).unwrap();
    let prec = spp_dag::PrecInstance::unconstrained(inst);
    let body = spp_gen::fileio::to_json(&prec);

    let path = "/solve?solver=nfdh&budget_ms=2000&improve_streams=4";
    let cold = roundtrip(&authority, "POST", path, &body).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert!(cold.body.contains("\"cached\": false"));
    assert!(
        cold.body.contains("improve_streams=4"),
        "config signature must carry the width: {}",
        cold.body
    );

    // Same width again: the signature-keyed cache replays it.
    let warm = roundtrip(&authority, "POST", path, &body).unwrap();
    assert!(warm.body.contains("\"cached\": true"));
    assert_eq!(
        cold.body.replace("\"cached\": false", "\"cached\": true"),
        warm.body
    );

    let r = roundtrip(&authority, "GET", "/stats", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.contains("\"streams\": 4"), "{}", r.body);
    assert!(r.body.contains("\"envelope_prunes\": 0"), "{}", r.body);
    let counters = server.counters();
    assert_eq!(counters.improve_streams, 4);
    assert!(counters.improve_iterations >= 4, "every stream rounds");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Keep-alive contract, happy path: one socket serves many requests, and
/// the server counts the reuse.
#[test]
fn keepalive_serves_many_requests_per_socket() {
    let (server, dir) = start("keepalive_reuse", false);
    let mut conn = spp_serve::http::Conn::connect(&server.authority()).unwrap();
    for i in 1..=5u64 {
        let r = conn.call("GET", "/stats", "").unwrap();
        assert_eq!(r.status, 200);
        assert!(!r.close, "request {i} should leave the connection open");
        assert_eq!(conn.requests(), i);
    }
    let counters = server.counters();
    assert_eq!(counters.connections_accepted, 1);
    assert_eq!(counters.keepalive_reuses, 4);
    // The per-connection maximum is recorded when the connection ends;
    // close ours and give the server a moment to notice the EOF.
    drop(conn);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        if server.counters().max_requests_per_connection == 5 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never recorded the closed connection: {:?}",
            server.counters()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Budget exhaustion: the N-th response on a connection advertises
/// `Connection: close` and the socket really closes — the next call on
/// it fails while a fresh connection keeps working.
#[test]
fn keepalive_budget_exhaustion_closes_with_connection_close() {
    let dir = tmp("keepalive_budget");
    let mut config = ServeConfig::new(&dir);
    config.workers = 2;
    config.keepalive_requests = 3;
    let server = Server::bind(&config).unwrap().spawn();
    let authority = server.authority();

    let mut conn = spp_serve::http::Conn::connect(&authority).unwrap();
    for i in 1..=3u64 {
        let r = conn.call("GET", "/stats", "").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(
            r.close,
            i == 3,
            "only the budget-exhausting response closes"
        );
    }
    assert!(
        conn.call("GET", "/stats", "").is_err(),
        "the socket must really be closed after the budget"
    );
    let r = roundtrip(&authority, "GET", "/stats", "").unwrap();
    assert_eq!(r.status, 200);
    let counters = server.counters();
    assert_eq!(counters.max_requests_per_connection, 3);
    assert_eq!(counters.errors, 0, "budget closes are not errors");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Idle timeout: a connection with no request in flight is closed
/// cleanly (EOF, no bytes) once its idle budget elapses.
#[test]
fn keepalive_idle_timeout_closes_cleanly() {
    use std::io::Read as _;
    let dir = tmp("keepalive_idle");
    let mut config = ServeConfig::new(&dir);
    config.workers = 2;
    config.idle_timeout = std::time::Duration::from_millis(100);
    let server = Server::bind(&config).unwrap().spawn();
    let authority = server.authority();

    let mut conn = spp_serve::http::Conn::connect(&authority).unwrap();
    let r = conn.call("GET", "/stats", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(!r.close);
    // Sit idle past the budget: the server's close shows up as a clean
    // EOF — zero bytes, not a mid-message reset.
    let mut stream = conn.into_stream();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 64];
    assert_eq!(stream.read(&mut buf).unwrap(), 0, "expected clean EOF");
    // The pool worker is free again: a fresh connection is served.
    let r = roundtrip(&authority, "GET", "/stats", "").unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(server.counters().errors, 0, "idle closes are not errors");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An HTTP/1.1 client sending `Connection: close` is honored: the
/// response advertises close and the socket ends after one exchange.
#[test]
fn explicit_connection_close_on_http11_is_honored() {
    use std::io::{Read as _, Write as _};
    let (server, dir) = start("explicit_close", false);

    let mut stream = std::net::TcpStream::connect(server.authority()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap(); // EOF terminates: server closed
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(
        raw.to_ascii_lowercase().contains("connection: close"),
        "{raw}"
    );
    // One-shot roundtrip() rides the same contract.
    let r = roundtrip(&server.authority(), "GET", "/stats", "").unwrap();
    assert!(r.close);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client dying mid-request (headers promise a body that never comes)
/// must not poison a pool worker: every worker stays serviceable.
#[test]
fn mid_request_disconnect_does_not_poison_workers() {
    use std::io::Write as _;
    let dir = tmp("mid_request_disconnect");
    let mut config = ServeConfig::new(&dir);
    config.workers = 2;
    let server = Server::bind(&config).unwrap().spawn();
    let authority = server.authority();

    // More broken connections than workers, so every worker sees at
    // least one mid-message EOF.
    for _ in 0..6 {
        let mut stream = std::net::TcpStream::connect(&authority).unwrap();
        stream
            .write_all(b"POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\npartial")
            .unwrap();
        drop(stream); // vanish before sending the rest of the body
    }
    // All workers still answer, on fresh and on persistent connections.
    for _ in 0..4 {
        let r = roundtrip(&authority, "GET", "/stats", "").unwrap();
        assert_eq!(r.status, 200);
    }
    let mut conn = spp_serve::http::Conn::connect(&authority).unwrap();
    assert_eq!(conn.call("GET", "/stats", "").unwrap().status, 200);
    assert_eq!(conn.call("GET", "/stats", "").unwrap().status, 200);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The backend-agreement property, network edition: the HTTP cache and a
/// local disk cache produce bit-identical cells over the same suite
/// workload, and a warm rerun through HTTP invokes zero solvers.
#[test]
fn http_and_disk_backends_agree() {
    let suite_dir = tmp("agree_suite");
    spp_gen::suite::write_suite(&suite_dir, 11, 10, 8).unwrap();
    let mut jobs = Vec::new();
    let plan = ShardPlan::from_dir(&suite_dir, 1).unwrap();
    for path in plan.paths() {
        let prec = spp_gen::fileio::read_path(path).unwrap();
        jobs.push(BatchJob::new(
            path.file_stem().unwrap().to_string_lossy().into_owned(),
            SolveRequest::new(prec),
        ));
    }
    let solvers = solvers(&["nfdh", "ffdh"]);

    let (server, server_dir) = start("agree_server", false);
    let http = HttpCache::new(&server.url(), false).unwrap();
    let disk_dir = tmp("agree_disk");
    let disk = DiskCache::new(&disk_dir, false).unwrap();

    for cache in [&http as &dyn SolveCache, &disk as &dyn SolveCache] {
        execute_cells(&jobs, &solvers, Some(cache)).unwrap();
        let warm = execute_cells(&jobs, &solvers, Some(cache)).unwrap();
        assert!(warm.iter().all(|c| c.from_cache));
        assert!(warm.iter().all(|c| c.outcome.is_none()));
    }
    assert_eq!(http.stats().misses, 16, "16 cold misses, then all hits");
    assert_eq!(http.stats().writes, 16);

    let from_http = execute_cells(&jobs, &solvers, Some(&http)).unwrap();
    let from_disk = execute_cells(&jobs, &solvers, Some(&disk)).unwrap();
    for (a, b) in from_http.iter().zip(&from_disk) {
        assert_eq!(a.solver, b.solver);
        assert_eq!(a.status, b.status);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.combined_lb.to_bits(), b.combined_lb.to_bits());
    }

    // The server's directory is a plain DiskCache directory: every entry
    // the HTTP clients published is locally servable, byte-canonical.
    for scanned in spp_engine::cache::scan_dir(&server_dir).unwrap() {
        let (k, c) = scanned.entry.expect("HTTP-published entry is valid");
        let text = std::fs::read_to_string(&scanned.path).unwrap();
        assert_eq!(text, entry_to_json(&k, &c));
        assert!(entry_parse(&text).is_ok());
    }

    server.shutdown();
    for d in [suite_dir, server_dir, disk_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
