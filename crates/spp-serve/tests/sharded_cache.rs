//! In-process tests of the cache fleet: `ShardedCache` over real
//! `spp serve` nodes agrees cell-for-cell with a local `DiskCache`,
//! node loss degrades to misses (never errors), read-repair repopulates
//! a primary, and every mutating endpoint enforces the bearer token.

use std::path::PathBuf;

use spp_core::hash::{Fnv1a, HashRing};
use spp_engine::cache::{entry_to_json, CacheKey, CachedCell};
use spp_engine::{
    execute_cells, BatchJob, CellStatus, DiskCache, Registry, ShardPlan, SolveCache, SolveConfig,
    SolveRequest, Solver, WorkQueue, WorkSource,
};
use spp_serve::http::{roundtrip, roundtrip_auth};
use spp_serve::{HttpCache, RemoteLease, ServeConfig, Server, ServerHandle, ShardedCache};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spp_sharded_test_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn solvers(names: &[&str]) -> Vec<Box<dyn Solver>> {
    let registry = Registry::builtin();
    names.iter().map(|n| registry.get(n).unwrap()).collect()
}

fn key(tag: &str) -> CacheKey {
    CacheKey {
        digest: spp_core::InstanceDigest::of_canonical_json(tag),
        solver: "nfdh".into(),
        config_sig: SolveConfig::default().signature(),
    }
}

fn cell(makespan: f64) -> CachedCell {
    CachedCell {
        status: CellStatus::Solved,
        makespan,
        combined_lb: makespan / 2.0,
        improved_from: None,
    }
}

/// Start one cache node, optionally requiring `token`.
fn start_node(tag: &str, token: Option<&str>) -> (ServerHandle, PathBuf) {
    let dir = tmp(tag);
    let mut config = ServeConfig::new(&dir);
    config.workers = 2;
    config.token = token.map(String::from);
    (Server::bind(&config).unwrap().spawn(), dir)
}

/// The suite workload every agreement test runs: jobs from a generated
/// instance directory.
fn suite_jobs(dir: &std::path::Path, seed: u64, n: usize, count: usize) -> Vec<BatchJob> {
    spp_gen::suite::write_suite(dir, seed, n, count).unwrap();
    let plan = ShardPlan::from_dir(dir, 1).unwrap();
    plan.paths()
        .iter()
        .map(|path| {
            let prec = spp_gen::fileio::read_path(path).unwrap();
            BatchJob::new(
                path.file_stem().unwrap().to_string_lossy().into_owned(),
                SolveRequest::new(prec),
            )
        })
        .collect()
}

/// Count the cache-entry files a node has on disk.
fn entries_on_disk(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir)
        .map(|it| it.filter_map(Result::ok).count())
        .unwrap_or(0)
}

/// The backend-agreement property, fleet edition: a two-node
/// `ShardedCache` (R = 2) produces bit-identical cells to a local
/// `DiskCache` over the same workload, a warm rerun invokes zero
/// solvers, and with R = N every entry lands on every node.
#[test]
fn sharded_and_disk_backends_agree() {
    let suite = tmp("agree_suite");
    let jobs = suite_jobs(&suite, 11, 10, 8);
    let solvers = solvers(&["nfdh", "ffdh"]);

    let (node_a, dir_a) = start_node("agree_a", None);
    let (node_b, dir_b) = start_node("agree_b", None);
    let sharded = ShardedCache::new(&[node_a.url(), node_b.url()], 2, false, None).unwrap();
    let disk_dir = tmp("agree_disk");
    let disk = DiskCache::new(&disk_dir, false).unwrap();

    for cache in [&sharded as &dyn SolveCache, &disk as &dyn SolveCache] {
        execute_cells(&jobs, &solvers, Some(cache)).unwrap();
        let warm = execute_cells(&jobs, &solvers, Some(cache)).unwrap();
        assert!(warm.iter().all(|c| c.from_cache));
        assert!(warm.iter().all(|c| c.outcome.is_none()));
    }
    assert_eq!(sharded.stats().misses, 16, "16 cold misses, then all hits");
    assert_eq!(sharded.stats().writes, 16);
    assert_eq!(sharded.stats().rejected, 0);
    assert_eq!(sharded.degraded_puts(), 0);

    let from_fleet = execute_cells(&jobs, &solvers, Some(&sharded)).unwrap();
    let from_disk = execute_cells(&jobs, &solvers, Some(&disk)).unwrap();
    for (a, b) in from_fleet.iter().zip(&from_disk) {
        assert_eq!(a.solver, b.solver);
        assert_eq!(a.status, b.status);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.combined_lb.to_bits(), b.combined_lb.to_bits());
    }

    // R = N = 2: every replica set is {A, B}, so both directories hold
    // the full key space — that is the redundancy `--replication 2` buys.
    assert_eq!(entries_on_disk(&dir_a), 16);
    assert_eq!(entries_on_disk(&dir_b), 16);

    node_a.shutdown();
    node_b.shutdown();
    for d in [suite, dir_a, dir_b, disk_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// Losing a node mid-fleet degrades to cache misses, never to errors:
/// the run completes, its cells are bit-identical to an uncached run,
/// and puts aimed at the dead node are absorbed, not surfaced.
#[test]
fn node_loss_degrades_to_misses_never_errors() {
    let suite = tmp("loss_suite");
    let jobs = suite_jobs(&suite, 17, 10, 8);
    let solvers = solvers(&["nfdh", "ffdh"]);

    let (node_a, dir_a) = start_node("loss_a", None);
    let (node_b, dir_b) = start_node("loss_b", None);
    // R = 1 so the key space is partitioned: losing a node must actually
    // cost misses (with R = 2 the survivor would hide the loss).
    let sharded = ShardedCache::new(&[node_a.url(), node_b.url()], 1, false, None).unwrap();

    let cold = execute_cells(&jobs, &solvers, Some(&sharded)).unwrap();
    let on_a = entries_on_disk(&dir_a);
    let on_b = entries_on_disk(&dir_b);
    assert_eq!(on_a + on_b, 16, "R = 1 partitions the key space");
    assert!(on_a > 0 && on_b > 0, "both nodes own keys ({on_a}/{on_b})");

    // Kill node B. The warm rerun must complete with zero hard errors:
    // B's keys recompute (misses) and their re-puts degrade to no-ops,
    // while A's keys still hit.
    node_b.shutdown();
    let after_loss = execute_cells(&jobs, &solvers, Some(&sharded)).unwrap();
    let hits = after_loss.iter().filter(|c| c.from_cache).count();
    assert_eq!(hits, on_a, "surviving node's keys still hit");
    assert_eq!(
        sharded.degraded_puts() as usize,
        on_b,
        "every re-put aimed at the dead node is absorbed"
    );
    for (a, b) in cold.iter().zip(&after_loss) {
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.status, b.status);
    }

    node_a.shutdown();
    for d in [suite, dir_a, dir_b] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// A hit found on a non-primary replica is re-put to the primary, so an
/// entry displaced by churn (here: seeded only on the secondary, as if
/// the primary's disk was wiped) migrates back to where gets look first.
#[test]
fn read_repair_repopulates_the_primary() {
    let (node_a, dir_a) = start_node("repair_a", None);
    let (node_b, dir_b) = start_node("repair_b", None);
    let urls = [node_a.url(), node_b.url()];
    let sharded = ShardedCache::new(&urls, 2, false, None).unwrap();

    // Recompute the placement the cache uses (same labels, same hash) to
    // learn which node is the key's primary.
    let k = key("repair-me");
    let ring = HashRing::new(&[urls[0].as_str(), urls[1].as_str()]);
    let order = ring.successors(Fnv1a::hash(k.file_name().as_bytes()), 2);
    let (primary, secondary) = (order[0], order[1]);

    // Seed the entry on the secondary only.
    let nodes = [
        HttpCache::new(&urls[0], false).unwrap(),
        HttpCache::new(&urls[1], false).unwrap(),
    ];
    nodes[secondary].put(&k, &cell(3.5)).unwrap();
    assert!(nodes[primary].get(&k).is_none(), "primary starts cold");

    // The sharded get walks primary (miss) then secondary (hit) — and
    // repairs the primary on the way out.
    assert_eq!(sharded.get(&k), Some(cell(3.5)));
    assert_eq!(sharded.read_repairs(), 1);
    assert_eq!(sharded.stats().hits, 1);
    assert_eq!(
        nodes[primary].get(&k),
        Some(cell(3.5)),
        "read-repair re-put the entry to the primary"
    );

    // Warm get: first probe hits, no further repair.
    assert_eq!(sharded.get(&k), Some(cell(3.5)));
    assert_eq!(sharded.read_repairs(), 1);

    // A read-only fleet client never repairs.
    let ro = ShardedCache::new(&urls, 2, true, None).unwrap();
    assert_eq!(ro.get(&key("ro-miss")), None);
    assert_eq!(ro.read_repairs(), 0);

    node_a.shutdown();
    node_b.shutdown();
    for d in [dir_a, dir_b] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// Every mutating cache endpoint requires the bearer token: missing,
/// wrong, and wrong-scheme credentials are 401 with `WWW-Authenticate`;
/// the right token (also via `HttpCache`/`ShardedCache`) is accepted;
/// read-only endpoints stay open.
#[test]
fn cache_endpoints_enforce_the_bearer_token() {
    use std::io::{Read as _, Write as _};
    let (server, dir) = start_node("authn", Some("fleet-secret"));
    let authority = server.authority();
    let k = key("authn");
    let stem_owned = k.file_name();
    let stem = stem_owned.strip_suffix(".json").unwrap();
    let path = format!("/cache/{stem}");
    let body = entry_to_json(&k, &cell(2.0));

    // Missing and wrong credentials: 401 with the structured error body.
    for token in [None, Some("wrong-secret"), Some("")] {
        let r = roundtrip_auth(&authority, "PUT", &path, &body, token).unwrap();
        assert_eq!(r.status, 401, "token {token:?}");
        assert!(r.body.contains("spp-serve-error"), "{}", r.body);
        let r = roundtrip_auth(&authority, "POST", "/solve?solver=nfdh", "{}", token).unwrap();
        assert_eq!(r.status, 401, "token {token:?}");
    }

    // The 401 carries `WWW-Authenticate: Bearer` on the wire, and a
    // non-Bearer scheme is refused no matter its contents.
    let mut stream = std::net::TcpStream::connect(&authority).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(
            format!(
                "PUT {path} HTTP/1.1\r\nHost: x\r\nAuthorization: Basic fleet-secret\r\n\
                 Content-Length: 0\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 401 Unauthorized"), "{raw}");
    assert!(raw.contains("WWW-Authenticate: Bearer"), "{raw}");

    // The right token is accepted on every protected endpoint.
    let r = roundtrip_auth(&authority, "PUT", &path, &body, Some("fleet-secret")).unwrap();
    assert_eq!(r.status, 204, "{}", r.body);
    // Reads stay open — a fleet's dashboards and read-through clients
    // need no credential.
    let r = roundtrip(&authority, "GET", &path, "").unwrap();
    assert_eq!(r.status, 200);
    let r = roundtrip(&authority, "GET", "/stats", "").unwrap();
    assert_eq!(r.status, 200);

    // The client stacks carry the token end to end.
    let http = HttpCache::new(&server.url(), false)
        .unwrap()
        .with_token(Some("fleet-secret".into()));
    assert!(http.put(&key("via-http"), &cell(1.0)).is_ok());
    let sharded =
        ShardedCache::new(&[server.url()], 1, false, Some("fleet-secret".into())).unwrap();
    assert!(sharded.put(&key("via-sharded"), &cell(1.0)).is_ok());
    assert_eq!(sharded.get(&key("via-sharded")), Some(cell(1.0)));

    // A tokenless client's put against a token'd fleet is a *loud*
    // rejection (live server saying no), not a silent degrade.
    let anon = ShardedCache::new(&[server.url()], 1, false, None).unwrap();
    assert!(anon.put(&key("anon"), &cell(1.0)).is_err());
    assert_eq!(anon.stats().rejected, 1);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The dispatcher's mutating work endpoints enforce the same token;
/// `RemoteLease::with_token` satisfies it, status stays open.
#[test]
fn work_endpoints_enforce_the_bearer_token() {
    let suite = tmp("work_authn_suite");
    spp_gen::suite::write_suite(&suite, 5, 8, 2).unwrap();
    let plan = ShardPlan::from_dir(&suite, 1).unwrap();
    let queue = WorkQueue::new(
        plan.paths().to_vec(),
        vec!["nfdh".into()],
        SolveConfig::default(),
        spp_engine::work::chunk_ranges(plan.len(), 1),
        None,
    );
    let mut config = ServeConfig::without_cache();
    config.token = Some("fleet-secret".into());
    let server = Server::bind_with_work(&config, Some(queue))
        .unwrap()
        .spawn();
    let authority = server.authority();

    for path in ["/work/lease", "/work/complete"] {
        let r = roundtrip(&authority, "POST", path, "").unwrap();
        assert_eq!(r.status, 401, "{path} without token");
        let r = roundtrip_auth(&authority, "POST", path, "", Some("wrong")).unwrap();
        assert_eq!(r.status, 401, "{path} with wrong token");
    }
    // Reads stay open.
    let r = roundtrip(&authority, "GET", "/work/status", "").unwrap();
    assert_eq!(r.status, 200);

    // A token'd worker leases fine; a tokenless one fails loudly.
    let anon = RemoteLease::new(&server.url()).unwrap();
    assert!(anon.lease().is_err());
    let trusted = RemoteLease::new(&server.url())
        .unwrap()
        .with_token(Some("fleet-secret".into()));
    assert!(trusted.lease().is_ok());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&suite);
}
