//! The Lemma 2.4 / Fig. 1 construction: why `O(log n)` is the best an
//! algorithm analyzed against `max(AREA, F)` can do.
//!
//! ```sh
//! cargo run --example adversarial_gap
//! ```

use strip_packing::gen::adversarial::fig1_lower_bound_gap;
use strip_packing::pack::Packer;

fn main() {
    println!("k | n      | AREA   | F      | OPT in [k/2, k+..] | DC height | DC/LB");
    println!("--+--------+--------+--------+--------------------+-----------+------");
    for k in 2..=10 {
        let fam = fig1_lower_bound_gap(k, 1e-6);
        let prec = &fam.prec;
        let pl = strip_packing::precedence::dc(prec, &Packer::Nfdh);
        prec.assert_valid(&pl);
        let h = pl.height(&prec.inst);
        println!(
            "{k:<2}| {n:<7}| {area:<7.3}| {f:<7.3}| [{lo:.1}, {hi:.1}]{pad}| {h:<10.3}| {r:.2}",
            n = fam.n(),
            area = prec.area_lb(),
            f = prec.critical_lb(),
            lo = fam.opt_lower_bound(),
            hi = fam.opt_upper_bound(),
            pad = " ".repeat(8),
            r = h / prec.lower_bound(),
        );
    }
    println!(
        "\nBoth simple lower bounds stay ≈ 1 while the true optimum grows like\n\
         k/2 = Θ(log n): the chains of height 1/2^i are interleaved with\n\
         width-1 separators, forcing shelf-like packings (paper, Lemma 2.4).\n\
         DC's measured ratio vs the simple bounds therefore *must* grow — the\n\
         algorithm is within a constant of what any analysis against these\n\
         bounds can certify."
    );
}
