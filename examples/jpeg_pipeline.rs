//! The paper's motivating application: scheduling a JPEG-like image
//! pipeline on a column-reconfigurable FPGA (§1).
//!
//! ```sh
//! cargo run --example jpeg_pipeline
//! ```
//!
//! Builds a 4-stripe JPEG encoder task graph on a 16-column device,
//! schedules it three ways (DC, greedy skyline, layered), validates every
//! schedule on the device model, and renders the best one as a Gantt
//! chart.

use strip_packing::fpga::{schedule_from_placement, to_prec_instance, Device};
use strip_packing::pack::Packer;

fn main() {
    let device = Device::new(16);
    let graph = strip_packing::fpga::pipelines::jpeg_pipeline(device, 4);
    println!(
        "JPEG pipeline: {} tasks on a {}-column device",
        graph.len(),
        device.columns()
    );
    println!(
        "lower bound on makespan: {:.2} (work/K = {:.2}, critical path = {:.2})",
        graph.makespan_lower_bound(),
        graph.total_work() / device.columns() as f64,
        graph.critical_path()
    );

    let prec = to_prec_instance(&graph);
    let candidates = [
        (
            "DC + NFDH",
            strip_packing::precedence::dc(&prec, &Packer::Nfdh),
        ),
        (
            "greedy skyline",
            strip_packing::precedence::greedy_skyline(&prec),
        ),
        (
            "layered + FFDH",
            strip_packing::precedence::layered_pack(&prec, &Packer::Ffdh),
        ),
    ];

    let mut best: Option<(&str, strip_packing::fpga::Schedule)> = None;
    for (name, placement) in &candidates {
        let sched = schedule_from_placement(&graph, placement)
            .expect("shelf/skyline placements are column-aligned");
        sched.validate(&graph).expect("valid schedule");
        let mk = sched.makespan(&graph);
        println!(
            "  {name:<16} makespan {:.2}  utilization {:.1}%",
            mk,
            100.0 * sched.utilization(&graph)
        );
        if best.as_ref().is_none_or(|(_, b)| mk < b.makespan(&graph)) {
            best = Some((name, sched));
        }
    }

    let (name, sched) = best.expect("at least one schedule");
    println!("\nGantt of the best schedule ({name}); digits are task ids (base 36):\n");
    print!(
        "{}",
        strip_packing::fpga::gantt::render(&graph, &sched, 0.5)
    );
}
