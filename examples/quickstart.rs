//! Quickstart: pack a small precedence-constrained task set with `DC`.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use strip_packing::core::{Instance, Item};
use strip_packing::dag::{Dag, PrecInstance};
use strip_packing::pack::Packer;
use strip_packing::precedence::{dc_bound, dc_with_stats};

fn main() {
    // Six tasks; width = fraction of the resource, height = duration.
    let items = vec![
        Item::new(0, 0.50, 1.0), // preprocessing
        Item::new(1, 0.25, 2.0), // feature extraction A
        Item::new(2, 0.25, 1.5), // feature extraction B
        Item::new(3, 0.40, 1.0), // fusion
        Item::new(4, 0.60, 0.5), // postprocess
        Item::new(5, 0.30, 1.0), // independent background job
    ];
    let inst = Instance::new(items).expect("valid items");

    // 0 feeds 1 and 2; both feed 3; 3 feeds 4. Task 5 is unconstrained.
    let dag = Dag::new(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).expect("acyclic");
    let prec = PrecInstance::new(inst, dag);

    println!("lower bounds:");
    println!("  AREA(S)        = {:.3}", prec.area_lb());
    println!("  F(S) (path)    = {:.3}", prec.critical_lb());
    println!("  combined LB    = {:.3}", prec.lower_bound());
    println!(
        "  Theorem 2.3 bound log2(n+1)*F + 2*AREA = {:.3}",
        dc_bound(&prec)
    );

    let (placement, stats) = dc_with_stats(&prec, &Packer::Nfdh);
    prec.assert_valid(&placement);

    println!("\nDC placement (x, y, w, h):");
    for it in prec.inst.items() {
        let p = placement.pos(it.id);
        println!(
            "  task {}: ({:.2}, {:.2})  {:.2} x {:.2}",
            it.id, p.x, p.y, it.w, it.h
        );
    }
    let h = placement.height(&prec.inst);
    println!("\ntotal height   = {:.3}", h);
    println!("ratio vs LB    = {:.3}", h / prec.lower_bound());
    println!(
        "recursion: {} calls to subroutine A, depth {}",
        stats.a_calls, stats.max_depth
    );

    // Exact optimum for comparison (tiny instance).
    let exact = strip_packing::exact::exact_strip(
        &prec,
        strip_packing::exact::ExactConfig::default(),
    );
    if exact.proven_optimal {
        println!("exact optimum  = {:.3}  (DC/OPT = {:.3})", exact.height, h / exact.height);
    }
}
