//! Quickstart: pack a small precedence-constrained task set through the
//! unified engine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use strip_packing::core::{Instance, Item};
use strip_packing::dag::{Dag, PrecInstance};
use strip_packing::engine::{solve, Registry, SolveRequest};
use strip_packing::precedence::dc_bound;

fn main() {
    // Six tasks; width = fraction of the resource, height = duration.
    let items = vec![
        Item::new(0, 0.50, 1.0), // preprocessing
        Item::new(1, 0.25, 2.0), // feature extraction A
        Item::new(2, 0.25, 1.5), // feature extraction B
        Item::new(3, 0.40, 1.0), // fusion
        Item::new(4, 0.60, 0.5), // postprocess
        Item::new(5, 0.30, 1.0), // independent background job
    ];
    let inst = Instance::new(items).expect("valid items");

    // 0 feeds 1 and 2; both feed 3; 3 feeds 4. Task 5 is unconstrained.
    let dag = Dag::new(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).expect("acyclic");
    let prec = PrecInstance::new(inst, dag);

    println!("lower bounds:");
    println!("  AREA(S)        = {:.3}", prec.area_lb());
    println!("  F(S) (path)    = {:.3}", prec.critical_lb());
    println!("  combined LB    = {:.3}", prec.lower_bound());
    println!(
        "  Theorem 2.3 bound log2(n+1)*F + 2*AREA = {:.3}",
        dc_bound(&prec)
    );

    // Algorithms are looked up by name in the engine registry; `solve`
    // layers timing, lower bounds and validation over the raw algorithm.
    let registry = Registry::builtin();
    let request = SolveRequest::new(prec.clone());
    println!("\nevery precedence-capable solver in the registry:");
    for entry in registry.filter(|c| c.precedence && !c.uniform_height_only) {
        let solver = entry.build();
        let report = solve(&*solver, &request).expect("request is in-model");
        assert!(report.validation.passed());
        println!(
            "  {:<16} height {:.3}  ratio {:.3}  ({} phases, {:?})",
            entry.name,
            report.makespan,
            report.ratio(),
            report.phases.len(),
            report.total_time(),
        );
    }

    // Inspect the winner's placement.
    let report = solve(&*registry.get("dc-nfdh").expect("registered"), &request).expect("in-model");
    println!("\nDC placement (x, y, w, h):");
    for it in prec.inst.items() {
        let p = report.placement.pos(it.id);
        println!(
            "  task {}: ({:.2}, {:.2})  {:.2} x {:.2}",
            it.id, p.x, p.y, it.w, it.h
        );
    }
    println!("\ntotal height   = {:.3}", report.makespan);
    println!("ratio vs LB    = {:.3}", report.ratio());

    // Exact optimum for comparison (tiny instance).
    let exact =
        strip_packing::exact::exact_strip(&prec, strip_packing::exact::ExactConfig::default());
    if exact.proven_optimal {
        println!(
            "exact optimum  = {:.3}  (DC/OPT = {:.3})",
            exact.height,
            report.makespan / exact.height
        );
    }
}
