//! Strip packing with release times (§3): every release-capable solver in
//! the engine registry vs the APTAS on an online FPGA task queue.
//!
//! ```sh
//! cargo run --example release_aptas
//! ```

use rand::{rngs::StdRng, SeedableRng};
use strip_packing::engine::{solve, Registry, SolveRequest};
use strip_packing::release::{aptas, AptasConfig};

fn main() {
    let k = 3;
    let mut rng = StdRng::seed_from_u64(2006);
    let params = strip_packing::gen::release::ReleaseParams {
        k,
        column_widths: true,
        h: (0.1, 1.0),
    };
    let inst = strip_packing::gen::release::poisson_arrivals(&mut rng, 60, 0.15, params);
    println!(
        "online queue: {} tasks, K = {k}, releases in [0, {:.2}]",
        inst.len(),
        inst.max_release()
    );
    let lb = strip_packing::release::baselines::release_lower_bound(&inst);
    println!("lower bound max(AREA, r+h): {lb:.3}\n");

    // Every solver that honors release times, straight from the registry —
    // offline baselines, online policies, and the APTAS compete on the
    // same request.
    let registry = Registry::builtin();
    let mut request = SolveRequest::unconstrained(inst.clone());
    request.config.k = k;
    println!("release-capable registry entries:");
    for entry in registry.filter(|c| c.release && !c.precedence) {
        let solver = entry.build();
        let report = solve(&*solver, &request).expect("queue is in the §3 model");
        assert!(report.validation.passed());
        println!(
            "  {:<16} height {:.3}  ratio vs LB {:.3}{}",
            entry.name,
            report.makespan,
            report.makespan / lb,
            if entry.capabilities.online {
                "  (online: no lookahead)"
            } else {
                ""
            }
        );
    }

    // The APTAS at higher accuracy, with its §3 artifacts exposed.
    for eps in [1.0, 0.5] {
        let cfg = AptasConfig { epsilon: eps, k };
        let res = aptas(&inst, cfg);
        strip_packing::core::validate::assert_valid(&inst, &res.placement);
        println!(
            "\nAPTAS (eps = {eps:<4}): height {:.3}  [OPT_f(P(R,W)) = {:.3}, \
             {} release levels, {} width classes, {} LP occurrences]",
            res.height, res.opt_f_grouped, res.release_levels, res.width_classes, res.occurrences,
        );
    }

    println!(
        "\nThe APTAS guarantee is asymptotic: height ≤ (1+eps)·OPT_f + (W+1)(R+1).\n\
         On small queues the additive term dominates and the simple baselines\n\
         win; as the queue grows the APTAS ratio approaches 1+eps (see E10 in\n\
         EXPERIMENTS.md)."
    );
}
