//! Strip packing with release times (§3): the APTAS vs practical
//! baselines on an online FPGA task queue.
//!
//! ```sh
//! cargo run --example release_aptas
//! ```

use rand::{rngs::StdRng, SeedableRng};
use strip_packing::release::{aptas, AptasConfig};

fn main() {
    let k = 3;
    let mut rng = StdRng::seed_from_u64(2006);
    let params = strip_packing::gen::release::ReleaseParams {
        k,
        column_widths: true,
        h: (0.1, 1.0),
    };
    let inst = strip_packing::gen::release::poisson_arrivals(&mut rng, 60, 0.15, params);
    println!(
        "online queue: {} tasks, K = {k}, releases in [0, {:.2}]",
        inst.len(),
        inst.max_release()
    );
    let lb = strip_packing::release::baselines::release_lower_bound(&inst);
    println!("lower bound max(AREA, r+h): {lb:.3}\n");

    // Practical baselines.
    let b1 = strip_packing::release::baselines::batched_ffdh(&inst);
    strip_packing::core::validate::assert_valid(&inst, &b1);
    println!("batched FFDH       : height {:.3}", b1.height(&inst));
    let b2 = strip_packing::release::baselines::skyline_release(&inst);
    strip_packing::core::validate::assert_valid(&inst, &b2);
    println!("release skyline    : height {:.3}", b2.height(&inst));

    // The APTAS at two accuracies.
    for eps in [1.0, 0.5] {
        let cfg = AptasConfig { epsilon: eps, k };
        let res = aptas(&inst, cfg);
        strip_packing::core::validate::assert_valid(&inst, &res.placement);
        println!(
            "APTAS (eps = {eps:<4}): height {:.3}  [OPT_f(P(R,W)) = {:.3}, \
             {} release levels, {} width classes, {} LP occurrences]",
            res.height,
            res.opt_f_grouped,
            res.release_levels,
            res.width_classes,
            res.occurrences,
        );
    }

    println!(
        "\nThe APTAS guarantee is asymptotic: height ≤ (1+eps)·OPT_f + (W+1)(R+1).\n\
         On small queues the additive term dominates and the simple baselines\n\
         win; as the queue grows the APTAS ratio approaches 1+eps (see E10 in\n\
         EXPERIMENTS.md)."
    );
}
