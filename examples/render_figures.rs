//! Render paper-style figures as SVG files: a `DC` packing of a layered
//! task graph, and the Lemma 2.4 / Fig. 1 adversarial construction.
//!
//! ```sh
//! cargo run --example render_figures
//! # -> dc_packing.svg, fig1_construction.svg in the working directory
//! ```

use rand::{rngs::StdRng, SeedableRng};
use strip_packing::pack::Packer;

fn main() {
    // 1. DC on a layered workload
    let mut rng = StdRng::seed_from_u64(42);
    let inst = strip_packing::gen::rects::uniform(&mut rng, 35, (0.08, 0.6), (0.1, 0.8));
    let prec = strip_packing::gen::rects::with_layered_dag(&mut rng, inst, 6, 0.2);
    let pl = strip_packing::precedence::dc(&prec, &Packer::Nfdh);
    prec.assert_valid(&pl);
    let svg = strip_packing::core::render::svg(&prec.inst, &pl, 300.0);
    std::fs::write("dc_packing.svg", &svg).expect("write dc_packing.svg");
    println!(
        "dc_packing.svg: {} items, height {:.3} (LB {:.3})",
        prec.len(),
        pl.height(&prec.inst),
        prec.lower_bound()
    );

    // 2. the Fig. 1 construction, packed by DC
    let fam = strip_packing::gen::adversarial::fig1_lower_bound_gap(5, 1e-4);
    let pl = strip_packing::precedence::dc(&fam.prec, &Packer::Nfdh);
    fam.prec.assert_valid(&pl);
    let svg = strip_packing::core::render::svg(&fam.prec.inst, &pl, 300.0);
    std::fs::write("fig1_construction.svg", &svg).expect("write fig1_construction.svg");
    println!(
        "fig1_construction.svg: k = {}, n = {}, height {:.3} vs simple LB {:.3}",
        fam.k,
        fam.n(),
        pl.height(&fam.prec.inst),
        fam.prec.lower_bound()
    );

    // also show the DC packing in the terminal
    println!("\nASCII view of the layered-DAG packing:");
    let mut rng = StdRng::seed_from_u64(42);
    let inst = strip_packing::gen::rects::uniform(&mut rng, 35, (0.08, 0.6), (0.1, 0.8));
    let prec = strip_packing::gen::rects::with_layered_dag(&mut rng, inst, 6, 0.2);
    let pl = strip_packing::precedence::dc(&prec, &Packer::Nfdh);
    let h = pl.height(&prec.inst);
    print!(
        "{}",
        strip_packing::core::render::ascii(&prec.inst, &pl, 60, h / 24.0)
    );
}
