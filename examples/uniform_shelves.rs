//! §2.2: uniform-height tasks, shelf algorithm `F` (absolute
//! 3-approximation) vs GGJY first-fit vs the exact optimum.
//!
//! ```sh
//! cargo run --example uniform_shelves
//! ```

use rand::{rngs::StdRng, Rng, SeedableRng};
use strip_packing::dag::PrecInstance;
use strip_packing::precedence::binpack::{first_fit_prec, next_fit_prec};
use strip_packing::precedence::uniform::{longest_path_nodes, shelf_next_fit};

fn main() {
    let mut rng = StdRng::seed_from_u64(22);
    let n = 14;
    let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.15..0.95)).collect();
    let dag = strip_packing::dag::gen::random_order(&mut rng, n, 0.2);
    let dims: Vec<(f64, f64)> = sizes.iter().map(|&w| (w, 1.0)).collect();
    let inst = strip_packing::core::Instance::from_dims(&dims).unwrap();
    let prec = PrecInstance::new(inst, dag.clone());

    println!(
        "{n} unit-height tasks, {} precedence edges",
        dag.edge_count()
    );
    println!(
        "lower bounds: ceil(AREA) = {}, longest path = {} tasks",
        prec.area_lb().ceil(),
        longest_path_nodes(&prec)
    );

    let shelf = shelf_next_fit(&prec);
    prec.assert_valid(&shelf.placement);
    let (red, green) = shelf.red_green();
    println!(
        "\nshelf algorithm F : {} shelves ({} skips; {} red + {} green in the \
         Theorem 2.6 coloring)",
        shelf.shelves.len(),
        shelf.skips,
        red,
        green
    );
    for (i, s) in shelf.shelves.iter().enumerate() {
        println!(
            "  shelf {i}: tasks {:?} (width used {:.2}){}",
            s.items,
            s.used,
            if s.skip { "  [skip]" } else { "" }
        );
    }

    let ff = first_fit_prec(&sizes, &dag);
    println!("\nGGJY first-fit    : {} bins", ff.len());
    let nf = next_fit_prec(&sizes, &dag);
    assert_eq!(nf.len(), shelf.shelves.len());

    let opt = strip_packing::exact::exact_bins(&sizes, &dag);
    println!("exact optimum     : {opt} bins");
    println!(
        "\nratios: F = {:.3} (absolute bound 3), first-fit = {:.3} \
         (asymptotic bound 2.7)",
        shelf.shelves.len() as f64 / opt as f64,
        ff.len() as f64 / opt as f64
    );
}
