//! `spp` — command-line front end for the strip-packing workspace.
//!
//! ```text
//! spp gen   --family layered -n 40 --seed 7 > inst.spp
//! spp gen   --family layered -n 40 --seed 7 --format json > inst.json
//! spp suite --out-dir instances/ --count 20 -n 24 --seed 7
//! spp pack  inst.spp --algo dc-nfdh --render ascii
//! spp pack  inst.spp --algo greedy --render svg > packing.svg
//! spp bounds inst.spp
//! spp batch --families layered,random --count 50 -n 30 --algos dc-nfdh,greedy,layered
//! spp batch --input-dir instances/ --algos nfdh,ffdh,greedy            # file mode
//! spp batch --input-dir instances/ --cache-dir cache/                  # cached / resumable
//! spp batch --input-dir instances/ --shards 4 --shard-index 2 --out s2.json
//! spp batch --merge s0.json,s1.json,s2.json,s3.json                   # combine shards
//! spp cache stats --cache-dir cache/
//! spp serve --cache-dir cache/ --addr 127.0.0.1:8080                   # cache + solve service
//! spp batch --input-dir instances/ --cache-url http://cachehost:8080   # workers share it
//! spp bench serve --duration-ms 2000 --out BENCH_SERVE.json            # load-test the server
//! spp algos
//! ```
//!
//! Algorithms are resolved through the engine registry
//! (`strip_packing::engine::Registry`), so `spp algos` and every error
//! message list exactly the solvers that exist — nothing is hard-coded in
//! this binary. Instance files are either `spp-instance` JSON (`.json`)
//! or the `spp v1` text format (anything else), dispatched on extension.
//!
//! Sharding: `--shards N --shard-index I` runs only the `I`-th contiguous
//! shard of the (sorted) file list and emits a portable shard report;
//! `--merge` combines the reports into the same table — byte-identical on
//! stdout to a single-process run over the same inputs.
//!
//! Caching: `--cache-dir DIR` attaches the content-addressed solve cache
//! to any file-mode batch (sharded or not). Every already-solved
//! `(instance, solver, config)` cell is served from `DIR` instead of
//! recomputed — which is also how interrupted runs resume — and the run
//! reports its hit/miss counts on stderr. `--cache-readonly` consults the
//! cache without writing back. `spp cache stats|gc|verify` inspect,
//! clean, and spot-check a cache directory.
//!
//! Serving: `spp serve --cache-dir DIR` stands the same cache behind an
//! HTTP front end (`GET`/`PUT /cache/<key>`, `POST /solve`, `GET
//! /stats`), and `--cache-url http://host:port` attaches any file-mode
//! batch to it instead of a local directory — the multi-machine topology:
//! shard workers anywhere, one shared cache, byte-identical output.
//! Connections are persistent (HTTP/1.1 keep-alive) with a
//! per-connection request budget (`--keepalive-requests`) and idle
//! timeout (`--idle-timeout-ms`); `spp bench serve` load-tests the stack
//! and writes `BENCH_SERVE.json` (RPS + latency quantiles, keep-alive vs
//! close-per-request).

use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use strip_packing::dag::PrecInstance;
use strip_packing::engine::{
    cache as solve_cache, merge_reports, run_batch, run_shard, run_sharded, work, BatchJob,
    CellStatus, DiskCache, MergedReport, Registry, ShardPlan, ShardReport, SolveCache, SolveConfig,
    SolveRequest, Solver, Validation, WorkError, WorkLease, WorkQueue, WorkSource,
};
use strip_packing::gen::rects::DagFamily;
use strip_packing::serve::{HttpCache, IoMode, RemoteLease, ServeConfig, Server, ShardedCache};

fn usage() -> ! {
    eprintln!(
        "usage:\n  spp gen --family <name> [-n <count>] [--seed <u64>] [--uniform-height]\n          [--format <spp|json>]\n  spp suite --out-dir <dir> [--count <n>] [-n <size>] [--seed <u64>]\n  spp pack|solve <file|-> [--algo <name>] [--render <none|ascii|svg>]\n          [--epsilon <f64>] [-k <usize>] [--shelf-r <f64>] [--strict]\n          [--budget-ms <ms>] [--improve-seed <u64>]\n          [--improve-streams <k>] [--improve-workers <n>] [--improve-envelope]\n  spp bounds <file|->\n  spp batch [--families <f1,f2,..>] [--count <per-family>] [-n <size>]\n          [--seed <u64>] [--algos <a1,a2,..>]\n          [--budget-ms <ms>] [--improve-seed <u64>]\n          [--improve-streams <k>] [--improve-workers <n>] [--improve-envelope]\n  spp batch (--input-dir <dir> | --file-list <file>) [--algos <a1,a2,..>]\n          [--shards <n>] [--shard-index <i>] [--out <file>]\n          [--cache-dir <dir> | --cache-url <url> | --cache-urls <u1,u2,..>]\n          [--replication <r>] [--token-file <file>] [--cache-readonly] [--cells]\n  spp batch --merge <report1,report2,..> [--cells]\n  spp batch --dispatcher-url <http://host:port> [--token-file <file>] [--cells]\n  spp cache stats --cache-dir <dir>\n  spp cache gc --cache-dir <dir> [--max-age <secs>]\n  spp cache verify --cache-dir <dir> (--input-dir <dir> | --file-list <file>)\n          [--algos <a1,a2,..>] [--sample <n>]\n  spp serve --cache-dir <dir> [--addr <host:port>] [--workers <n>]\n          [--max-body <bytes>] [--max-budget-ms <ms>]\n          [--max-improve-streams <k>] [--cache-readonly]\n          [--token-file <file>]\n          [--keepalive-requests <n>] [--idle-timeout-ms <ms>]\n          [--io-mode <auto|blocking|event>]\n  spp dispatch (--input-dir <dir> | --file-list <file>) [--algos <a1,a2,..>]\n          [--addr <host:port>] [--lease-files <n>] [--lease-timeout <secs>]\n          [--cache-dir <dir>] [--workers <n>] [--max-body <bytes>]\n          [--token-file <file>] [--keepalive-requests <n>] [--idle-timeout-ms <ms>]\n          [--io-mode <auto|blocking|event>]\n  spp work --dispatcher-url <http://host:port>\n          [--cache-dir <dir> | --cache-url <url> | --cache-urls <u1,u2,..>]\n          [--replication <r>] [--token-file <file>]\n          [--workers <n>] [--poll-ms <ms>] [--abandon-after <n>]\n  spp bench serve [--url <http://host:port>] [--clients <n>]\n          [--mode <keepalive|close|both>] [--workload <cache-hit|solve>]\n          [--duration-ms <ms> | --requests <n>] [--rate <rps>]\n          [--workers <n>] [--out <file>] [--io-mode <auto|blocking|event>]\n          [--idle-clients <n>]\n  spp algos\n\nrun `spp algos` for the algorithm registry with capability flags"
    );
    std::process::exit(2);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or_usage<T: std::str::FromStr>(v: String) -> T {
    v.parse().unwrap_or_else(|_| usage())
}

fn family_by_name(name: &str) -> DagFamily {
    DagFamily::ALL
        .into_iter()
        .find(|f| f.name() == name)
        .unwrap_or_else(|| {
            let known: Vec<&str> = DagFamily::ALL.iter().map(|f| f.name()).collect();
            eprintln!(
                "error: unknown family {name:?}; known families: {}",
                known.join(" ")
            );
            std::process::exit(2);
        })
}

fn config_from_args(args: &[String]) -> SolveConfig {
    let mut config = SolveConfig::default();
    if let Some(e) = arg_value(args, "--epsilon") {
        config.epsilon = parse_or_usage(e);
    }
    if let Some(k) = arg_value(args, "-k") {
        config.k = parse_or_usage(k);
    }
    if let Some(r) = arg_value(args, "--shelf-r") {
        config.shelf_r = parse_or_usage(r);
    }
    if let Some(b) = arg_value(args, "--budget-ms") {
        config.budget_ms = parse_or_usage(b);
    }
    if let Some(s) = arg_value(args, "--improve-seed") {
        config.improve_seed = parse_or_usage(s);
    }
    if let Some(s) = arg_value(args, "--improve-streams") {
        config.improve_streams = parse_or_usage(s);
        if config.improve_streams < 1 {
            usage();
        }
    } else if config.budget_ms > 0 {
        // Budgeted solving with no explicit width defaults to the
        // machine's parallelism (capped): one budget buys every core's
        // worth of search. Explicit `--improve-streams 1` restores the
        // single-stream search; the width is part of the result's
        // identity either way (it's in the config signature).
        config.improve_streams = std::thread::available_parallelism()
            .map(|c| c.get() as u64)
            .unwrap_or(1)
            .min(8);
    }
    if let Some(w) = arg_value(args, "--improve-workers") {
        config.improve_workers = parse_or_usage(w);
    }
    config.improve_envelope = args.iter().any(|a| a == "--improve-envelope");
    config.strict = args.iter().any(|a| a == "--strict");
    config
}

/// Exit 2 on an unknown `--algo`, listing next to the registry's full
/// name list which of them are anytime-capable (accept `--budget-ms`,
/// `--improve-streams`, …).
fn unknown_algo_exit(registry: &Registry, err: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {err}");
    let anytime: Vec<&str> = registry.filter(|c| c.anytime).map(|e| e.name).collect();
    eprintln!(
        "anytime-capable (honor --budget-ms / --improve-streams): {}",
        anytime.join(" ")
    );
    std::process::exit(2);
}

fn read_instance(path: &str) -> PrecInstance {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| {
                eprintln!("error: cannot read stdin: {e}");
                std::process::exit(1);
            });
        // No extension on stdin: a JSON document starts with '{', the
        // `spp v1` text format never does.
        let result = if buf.trim_start().starts_with('{') {
            strip_packing::gen::fileio::from_json(&buf)
        } else {
            strip_packing::gen::textio::from_text(&buf)
                .map_err(strip_packing::gen::fileio::FileIoError::Text)
        };
        result.unwrap_or_else(|e| {
            eprintln!("error: cannot parse instance: {e}");
            std::process::exit(1);
        })
    } else {
        strip_packing::gen::fileio::read_path(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("error: cannot parse instance: {e}");
            std::process::exit(1);
        })
    }
}

fn cmd_gen(args: &[String]) -> ExitCode {
    use rand::SeedableRng;
    let family_name = arg_value(args, "--family").unwrap_or_else(|| "layered".into());
    let n: usize = arg_value(args, "-n").map(parse_or_usage).unwrap_or(30);
    let seed: u64 = arg_value(args, "--seed").map(parse_or_usage).unwrap_or(1);
    let family = family_by_name(&family_name);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inst = if args.iter().any(|a| a == "--uniform-height") {
        strip_packing::gen::rects::uniform_height(&mut rng, n, (0.05, 0.95))
    } else {
        strip_packing::gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0))
    };
    let dag = family.build(&mut rng, n);
    let prec = PrecInstance::new(inst, dag);
    match arg_value(args, "--format").as_deref() {
        None | Some("spp") => print!("{}", strip_packing::gen::textio::to_text(&prec)),
        Some("json") => print!("{}", strip_packing::gen::fileio::to_json(&prec)),
        Some(other) => {
            eprintln!("error: unknown format {other:?} (expected spp or json)");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// Generate a scenario suite (deep-chain DAGs, bursty releases, skyline
/// adversaries, …) as `spp-instance` JSON files — the input side of the
/// sharded batch pipeline.
fn cmd_suite(args: &[String]) -> ExitCode {
    let Some(out_dir) = arg_value(args, "--out-dir") else {
        usage()
    };
    let count: usize = arg_value(args, "--count").map(parse_or_usage).unwrap_or(20);
    let n: usize = arg_value(args, "-n").map(parse_or_usage).unwrap_or(24);
    let seed: u64 = arg_value(args, "--seed").map(parse_or_usage).unwrap_or(1);
    match strip_packing::gen::suite::write_suite(Path::new(&out_dir), seed, n, count) {
        Ok(paths) => {
            eprintln!("wrote {} instance files to {out_dir}", paths.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_pack(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else { usage() };
    let prec = read_instance(path);
    let algo = arg_value(args, "--algo").unwrap_or_else(|| "dc-nfdh".into());

    let registry = Registry::builtin();
    let solver = match registry.get_or_err(&algo) {
        Ok(s) => s,
        Err(e) => unknown_algo_exit(&registry, &e),
    };
    let request = SolveRequest::new(prec).with_config(config_from_args(args));
    let report = match strip_packing::engine::solve(solver.as_ref(), &request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match &report.validation {
        Validation::Passed | Validation::Skipped => {}
        Validation::PassedIgnoring(ignored) => {
            let kinds: Vec<String> = ignored.iter().map(|c| c.to_string()).collect();
            eprintln!(
                "note: {algo} does not honor {} constraints; they were ignored \
                 (pass --strict to refuse instead)",
                kinds.join("+")
            );
        }
        Validation::Failed(e) => {
            eprintln!("internal error: produced invalid placement: {e}");
            return ExitCode::FAILURE;
        }
    }

    let prec = &request.prec;
    eprintln!(
        "algorithm {algo}: height {:.4} (AREA LB {:.4}, F LB {:.4}, ratio {:.3})",
        report.makespan,
        report.bounds.area,
        report.bounds.critical_path,
        report.ratio()
    );
    if report.improve_rounds > 0 {
        eprintln!(
            "anytime: seed {:.4} -> {:.4} after {} rounds across {} streams (gain {:.4})",
            report.seed_makespan,
            report.makespan,
            report.improve_rounds,
            report.improve_streams,
            report.improve_gain()
        );
    }
    match arg_value(args, "--render").as_deref() {
        None | Some("none") => {
            for it in prec.inst.items() {
                let p = report.placement.pos(it.id);
                println!("place {} {:.9} {:.9}", it.id, p.x, p.y);
            }
        }
        Some("ascii") => {
            print!(
                "{}",
                strip_packing::core::render::ascii(
                    &prec.inst,
                    &report.placement,
                    60,
                    report.makespan / 30.0
                )
            );
        }
        Some("svg") => {
            print!(
                "{}",
                strip_packing::core::render::svg(&prec.inst, &report.placement, 400.0)
            );
        }
        Some(other) => {
            eprintln!("error: unknown renderer {other}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_bounds(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else { usage() };
    let prec = read_instance(path);
    println!("n            {}", prec.len());
    println!("edges        {}", prec.dag.edge_count());
    println!("AREA         {:.6}", prec.area_lb());
    println!("F (crit path){:>10.6}", prec.critical_lb());
    println!(
        "combined LB  {:.6}",
        strip_packing::precedence::combined::combined_lower_bound(&prec)
    );
    println!(
        "T2.3 bound   {:.6}",
        strip_packing::precedence::dc_bound(&prec)
    );
    ExitCode::SUCCESS
}

/// List the registry: one line per solver with capability flags and the
/// advertised bound (if the entry claims one — the conformance suite
/// holds it to the claim).
fn cmd_algos() -> ExitCode {
    let registry = Registry::builtin();
    println!(
        "{:<16} {:<30} {:<28} description",
        "name", "honors", "advertised bound"
    );
    for e in registry.entries() {
        let mut honors = Vec::new();
        if e.capabilities.precedence {
            honors.push("prec");
        }
        if e.capabilities.release {
            honors.push("release");
        }
        if e.capabilities.online {
            honors.push("online");
        }
        if e.capabilities.a_bound {
            honors.push("A-bound");
        }
        if e.capabilities.uniform_height_only {
            honors.push("uniform-h");
        }
        if e.capabilities.anytime {
            honors.push("anytime");
        }
        let honors = if honors.is_empty() {
            "-".to_string()
        } else {
            honors.join(",")
        };
        let advertised = e.advertised.as_ref().map_or("-", |a| a.formula);
        println!(
            "{:<16} {:<30} {:<28} {}",
            e.name, honors, advertised, e.summary
        );
    }
    println!();
    println!(
        "anytime solvers honor --budget-ms <ms> (seeded remove-and-reinsert until the deadline)"
    );
    println!("and --improve-streams <k> (portfolio width: k independent streams per budget, best");
    println!(
        "stream wins deterministically; defaults to available parallelism, capped at 8, when a"
    );
    println!("budget is set). --improve-workers <n> sets threads (never changes results);");
    println!("--improve-envelope shares a best-so-far bound across streams (faster, but");
    println!("results become scheduling-dependent).");
    ExitCode::SUCCESS
}

/// Resolve `--algos` against the registry, exiting with the live name
/// listing on an unknown solver.
fn solvers_from_args(args: &[String], default: &str) -> Vec<Box<dyn Solver>> {
    let registry = Registry::builtin();
    let algos: Vec<String> = arg_value(args, "--algos")
        .unwrap_or_else(|| default.into())
        .split(',')
        .map(str::to_string)
        .collect();
    let mut solvers = Vec::new();
    for name in &algos {
        match registry.get_or_err(name) {
            Ok(s) => solvers.push(s),
            Err(e) => unknown_algo_exit(&registry, &e),
        }
    }
    solvers
}

/// Print a merged report (optionally per-cell rows) and convert invalid
/// cells into a failing exit code.
fn finish_merged(merged: &MergedReport, cells: bool) -> ExitCode {
    if cells {
        print!("{}", merged.render_cells());
    }
    print!("{}", merged.render_table());
    let invalid = merged.invalid_cells();
    if invalid > 0 {
        eprintln!("error: {invalid} cells produced invalid placements");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Load the shared bearer token named by `--token-file`, if any. Exits
/// on an unreadable or empty file — a fleet member silently running
/// without its credential would only discover that as a wall of 401s.
fn token_from_args(args: &[String]) -> Option<String> {
    let path = arg_value(args, "--token-file")?;
    match strip_packing::serve::auth::token_from_file(Path::new(&path)) {
        Ok(token) => Some(token),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Open the solve cache named by `--cache-dir` (local directory),
/// `--cache-url` (one `spp serve` instance), or `--cache-urls` (a
/// consistent-hash fleet of them, with `--replication`), if any — all
/// implement the same `SolveCache` trait, so the executor cannot tell
/// them apart. `--token-file` attaches the fleet's bearer token to the
/// HTTP backends. Exits on an unusable backend — the user asked for
/// durability and silently running uncached would defeat the point.
fn cache_from_args(args: &[String]) -> Option<Box<dyn SolveCache>> {
    let readonly = args.iter().any(|a| a == "--cache-readonly");
    let dir = arg_value(args, "--cache-dir");
    let url = arg_value(args, "--cache-url");
    let urls = arg_value(args, "--cache-urls");
    if [dir.is_some(), url.is_some(), urls.is_some()]
        .iter()
        .filter(|set| **set)
        .count()
        > 1
    {
        eprintln!("error: --cache-dir, --cache-url and --cache-urls are mutually exclusive");
        std::process::exit(2);
    }
    if urls.is_none() && arg_value(args, "--replication").is_some() {
        eprintln!("error: --replication requires --cache-urls");
        std::process::exit(2);
    }
    if let Some(urls) = urls {
        let replication: usize = arg_value(args, "--replication")
            .map(parse_or_usage)
            .unwrap_or(strip_packing::serve::sharded::DEFAULT_REPLICATION);
        let list: Vec<String> = urls
            .split(',')
            .map(str::trim)
            .filter(|u| !u.is_empty())
            .map(String::from)
            .collect();
        match ShardedCache::new(&list, replication, readonly, token_from_args(args)) {
            Ok(c) => return Some(Box::new(c)),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(url) = url {
        // Construction only validates the URL shape; an unreachable
        // server shows up as all-misses (and failed writes error per
        // cell), matching a cold local cache.
        match HttpCache::new(&url, readonly) {
            Ok(c) => return Some(Box::new(c.with_token(token_from_args(args)))),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    let Some(dir) = dir else {
        // Fail loudly, like the removed --manifest: a run the user
        // believes is cache-backed must not silently go uncached.
        if readonly {
            eprintln!("error: --cache-readonly requires --cache-dir, --cache-url or --cache-urls");
            std::process::exit(2);
        }
        return None;
    };
    // A read-only cache that does not exist is almost certainly a typo'd
    // path; running "warm" at full solve cost would hide it.
    if readonly && !Path::new(&dir).is_dir() {
        eprintln!("error: --cache-readonly: cache directory {dir} does not exist");
        std::process::exit(1);
    }
    match DiskCache::new(Path::new(&dir), readonly) {
        Ok(c) => Some(Box::new(c)),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// File-mode batch: instances come from `--input-dir` or `--file-list`,
/// split into `--shards` contiguous shards, all cells flowing through
/// the cache-consulting executor when `--cache-dir` is set.
///
/// * with `--shard-index i`: run only shard `i` and emit its portable
///   report (stdout or `--out`) for a later `--merge` — the
///   multi-process / multi-machine path (shard processes may share one
///   cache directory);
/// * without: run all shards in this process, merge, and print the
///   canonical table. With a cache, a rerun is a **resume**: every
///   already-solved cell is served from disk.
fn cmd_batch_files(args: &[String]) -> ExitCode {
    let shards: usize = arg_value(args, "--shards").map(parse_or_usage).unwrap_or(1);
    let plan = match (
        arg_value(args, "--input-dir"),
        arg_value(args, "--file-list"),
    ) {
        (Some(dir), None) => ShardPlan::from_dir(Path::new(&dir), shards),
        (None, Some(list)) => ShardPlan::from_file_list(Path::new(&list), shards),
        _ => usage(),
    };
    let plan = match plan {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let solvers = solvers_from_args(args, "nfdh,ffdh,greedy,dc-nfdh");
    let config = config_from_args(args);
    let cache = cache_from_args(args);
    let cache_ref: Option<&dyn SolveCache> = cache.as_deref();
    let report_cache_use = |cache: &Option<Box<dyn SolveCache>>| {
        if let Some(c) = cache {
            eprintln!("cache: {}", c.stats());
        }
    };

    if let Some(index) = arg_value(args, "--shard-index") {
        reject_flags(
            args,
            &["--cells"],
            "to a single-shard run (its output is the report JSON; use --cells on the in-process multi-shard or --merge paths)",
        );
        let index: usize = parse_or_usage(index);
        let report = match run_shard(&plan, index, &solvers, &config, cache_ref) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "shard {index}/{}: {} files, {} cells",
            plan.shards(),
            plan.shard_paths(index).map_or(0, <[PathBuf]>::len),
            report.cells.len()
        );
        report_cache_use(&cache);
        let json = report.to_json();
        match arg_value(args, "--out") {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            None => print!("{json}"),
        }
        return ExitCode::SUCCESS;
    }

    reject_flags(
        args,
        &["--out"],
        "without --shard-index (only a single-shard run emits a report file)",
    );
    // Stream per-shard aggregates to stderr as they complete (stdout
    // stays deterministic for diffing).
    let observer = |r: &ShardReport| {
        let solved = r
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Solved)
            .count();
        let origin = match r.runtime {
            Some(rt) if rt.fully_cached(r.cells.len()) => "resumed",
            _ => "computed",
        };
        eprintln!(
            "shard {}/{}: {} cells, {solved} solved ({origin})",
            r.shard,
            r.shards,
            r.cells.len()
        );
    };
    let t0 = std::time::Instant::now();
    let merged = match run_sharded(&plan, &solvers, &config, cache_ref, Some(&observer)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "batch: {} files x {} solvers = {} cells in {} shards, {:.2}s wall",
        plan.len(),
        solvers.len(),
        merged.cells.len(),
        plan.shards(),
        t0.elapsed().as_secs_f64()
    );
    report_cache_use(&cache);
    finish_merged(&merged, args.iter().any(|a| a == "--cells"))
}

/// Merge shard report files (comma-separated) into the canonical table —
/// byte-identical on stdout to the single-process run over the same
/// inputs.
fn cmd_batch_merge(paths_arg: &str, args: &[String]) -> ExitCode {
    let mut reports = Vec::new();
    for path in paths_arg.split(',').filter(|p| !p.is_empty()) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match ShardReport::parse(&text) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match merge_reports(reports) {
        Ok(merged) => finish_merged(&merged, args.iter().any(|a| a == "--cells")),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `spp batch --dispatcher-url`: the thin client of a running
/// `spp dispatch`. Polls the queue until every chunk is completed by the
/// worker fleet, fetches the merged report, and prints the canonical
/// table — byte-identical on stdout to a single-process `spp batch` over
/// the dispatcher's inputs.
fn cmd_batch_await(url: &str, args: &[String]) -> ExitCode {
    let remote = match RemoteLease::new(url) {
        Ok(r) => r.with_token(token_from_args(args)),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut last_done = usize::MAX;
    loop {
        let status = match remote.progress() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if status.completed_chunks != last_done {
            last_done = status.completed_chunks;
            eprintln!(
                "dispatch: {}/{} chunks complete ({} jobs, {} leases, {} requeued)",
                status.completed_chunks, status.chunks, status.jobs, status.leases, status.requeued
            );
        }
        if status.done {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    match remote.fetch_report() {
        Ok(merged) => finish_merged(&merged, args.iter().any(|a| a == "--cells")),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `spp dispatch`: serve the pull-based work queue over HTTP.
///
/// The dispatcher owns the plan: the sorted instance-file list (split
/// into `--lease-files`-sized chunks), the solver list, and the solve
/// config every lease carries. Workers (`spp work`) pull chunks and
/// report portable cells back; a lease not completed within
/// `--lease-timeout` seconds is requeued, so a killed worker loses
/// nothing. With `--cache-dir` the same process also serves the shared
/// solve cache (the `spp serve` role) — the natural one-host setup.
///
/// Like `spp serve`, prints `listening on http://host:port` as the first
/// stdout line and runs until killed (it keeps answering `/work/status`
/// and `/work/report` after the batch completes, so late clients can
/// still collect the result).
fn cmd_dispatch(args: &[String]) -> ExitCode {
    use std::io::Write as _;
    let lease_files: usize = arg_value(args, "--lease-files")
        .map(parse_or_usage)
        .unwrap_or(1);
    let lease_timeout: u64 = arg_value(args, "--lease-timeout")
        .map(parse_or_usage)
        .unwrap_or(60);
    let plan = match (
        arg_value(args, "--input-dir"),
        arg_value(args, "--file-list"),
    ) {
        (Some(dir), None) => ShardPlan::from_dir(Path::new(&dir), 1),
        (None, Some(list)) => ShardPlan::from_file_list(Path::new(&list), 1),
        _ => usage(),
    };
    let plan = match plan {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // Resolve solver names up front: a dispatcher advertising an unknown
    // solver would fail every worker later, loudly but wastefully.
    let solvers = solvers_from_args(args, "nfdh,ffdh,greedy,dc-nfdh");
    let names: Vec<String> = solvers.iter().map(|s| s.name().to_string()).collect();
    let config = config_from_args(args);
    let queue = WorkQueue::new(
        plan.paths().to_vec(),
        names.clone(),
        config,
        work::chunk_ranges(plan.len(), lease_files),
        Some(std::time::Duration::from_secs(lease_timeout.max(1))),
    );

    let mut serve_config = match arg_value(args, "--cache-dir") {
        Some(dir) => ServeConfig::new(dir),
        None => ServeConfig::without_cache(),
    };
    if let Some(addr) = arg_value(args, "--addr") {
        serve_config.addr = addr;
    }
    if let Some(w) = arg_value(args, "--workers") {
        serve_config.workers = parse_or_usage(w);
    }
    if let Some(m) = arg_value(args, "--max-body") {
        serve_config.max_body = parse_or_usage(m);
    }
    serve_config.readonly = args.iter().any(|a| a == "--cache-readonly");
    serve_config.token = token_from_args(args);
    keepalive_from_args(args, &mut serve_config);
    let server = match Server::bind_with_work(&serve_config, Some(queue)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on http://{}", server.local_addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "dispatching {} files x {} solvers in {}-file leases (timeout {}s){} (io-mode {}); \
         endpoints: POST /work/lease, POST /work/complete, GET /work/status, \
         GET /work/report, GET /stats",
        plan.len(),
        names.len(),
        lease_files.max(1),
        lease_timeout.max(1),
        if serve_config.cache_dir.is_some() {
            "; also serving the cache role"
        } else {
            ""
        },
        server.io_mode().name()
    );
    server.run();
    ExitCode::SUCCESS
}

/// `spp work`: a pull-loop worker against a running `spp dispatch`.
///
/// Leases chunks, loads their instance files, runs every cell through
/// the engine's one cache-consulting pipeline (attach the fleet's shared
/// cache with `--cache-url`, or a local `--cache-dir`), and reports the
/// portable rows back. Exits 0 when the dispatcher says the batch is
/// done, nonzero on a hard error (the dispatcher requeues this worker's
/// outstanding lease at its deadline either way).
///
/// `--workers N` runs N concurrent pull loops in this process (each
/// lease already fans out over cores internally, so the default of 1 is
/// right unless leases are tiny). `--abandon-after N` is a chaos hook
/// for testing the requeue path: the process exits 3 *without
/// completing* its N-th lease — exactly what a worker killed mid-chunk
/// looks like to the dispatcher.
fn cmd_work(args: &[String]) -> ExitCode {
    let Some(url) = arg_value(args, "--dispatcher-url") else {
        usage()
    };
    let source = match RemoteLease::new(&url) {
        Ok(s) => s.with_token(token_from_args(args)),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let cache = cache_from_args(args);
    let cache_ref: Option<&dyn SolveCache> = cache.as_deref();
    let pullers: usize = arg_value(args, "--workers")
        .map(parse_or_usage)
        .unwrap_or(1);
    let poll = std::time::Duration::from_millis(
        arg_value(args, "--poll-ms")
            .map(parse_or_usage)
            .unwrap_or(200),
    );
    let abandon_after: Option<u64> = arg_value(args, "--abandon-after").map(parse_or_usage);

    let registry = Registry::builtin();
    let leases_taken = std::sync::atomic::AtomicU64::new(0);
    let execute = |lease: &WorkLease| {
        let taken = leases_taken.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
        if abandon_after == Some(taken) {
            eprintln!(
                "work: abandoning lease {} without completing it (--abandon-after {taken})",
                lease.id
            );
            std::process::exit(3);
        }
        let mut solvers: Vec<Box<dyn Solver>> = Vec::with_capacity(lease.solvers.len());
        for name in &lease.solvers {
            match registry.get_or_err(name) {
                Ok(s) => solvers.push(s),
                Err(e) => {
                    return Err(WorkError::Protocol {
                        context: format!("lease {}", lease.id),
                        err: format!("dispatcher names a solver this binary lacks: {e}"),
                    })
                }
            }
        }
        work::execute_lease(lease, &solvers, cache_ref)
    };
    let totals = std::sync::Mutex::new(work::PullStats::default());
    let first_error: std::sync::Mutex<Option<WorkError>> = std::sync::Mutex::new(None);
    spp_par_run(pullers.max(1), || {
        match work::pull_work(&source, &execute, None, poll) {
            Ok(stats) => {
                let mut t = totals.lock().unwrap();
                t.leases += stats.leases;
                t.cells += stats.cells;
                t.waits += stats.waits;
            }
            Err(e) => {
                let mut slot = first_error.lock().unwrap();
                if slot.is_none() && e != WorkError::Aborted {
                    *slot = Some(e);
                }
            }
        }
    });
    if let Some(e) = first_error.into_inner().unwrap() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let t = totals.into_inner().unwrap();
    eprintln!("work: {} leases, {} cells", t.leases, t.cells);
    if let Some(c) = &cache {
        eprintln!("cache: {}", c.stats());
    }
    ExitCode::SUCCESS
}

/// `run_workers` with a zero-argument closure (the worker index is
/// irrelevant to a pull loop — the queue is the scheduler).
fn spp_par_run(workers: usize, f: impl Fn() + Sync) {
    strip_packing::par::run_workers(workers, |_| f());
}

/// Batch entry point: dispatch between the in-process generator mode
/// (`--families`), the instance-file modes (`--input-dir`/`--file-list`,
/// with optional sharding), and shard-report merging (`--merge`).
fn cmd_batch(args: &[String]) -> ExitCode {
    // PR 2's per-shard manifest resume is gone. Error loudly — a script
    // still passing `--manifest` believes its runs are resumable, and
    // silently ignoring the flag would make that belief wrong.
    if args.iter().any(|a| a == "--manifest") {
        eprintln!(
            "error: --manifest was removed; use --cache-dir <dir> (the content-addressed \
             solve cache resumes at cell granularity and needs no manifest files)"
        );
        return ExitCode::from(2);
    }
    if let Some(url) = arg_value(args, "--dispatcher-url") {
        reject_flags(
            args,
            &[
                "--input-dir",
                "--file-list",
                "--shards",
                "--shard-index",
                "--out",
                "--merge",
                "--cache-dir",
                "--cache-url",
                "--cache-urls",
                "--replication",
                "--cache-readonly",
                "--algos",
                "--families",
            ],
            "to --dispatcher-url (the dispatcher owns the plan, solver list and cache wiring)",
        );
        return cmd_batch_await(&url, args);
    }
    if let Some(paths) = arg_value(args, "--merge") {
        reject_flags(
            args,
            &[
                "--input-dir",
                "--file-list",
                "--shards",
                "--shard-index",
                "--out",
                "--cache-dir",
                "--cache-url",
                "--cache-urls",
                "--replication",
                "--token-file",
                "--cache-readonly",
                "--algos",
                "--families",
            ],
            "to --merge (solver list and cells come from the shard reports)",
        );
        return cmd_batch_merge(&paths, args);
    }
    if args
        .iter()
        .any(|a| a == "--input-dir" || a == "--file-list")
    {
        reject_flags(
            args,
            &["--families", "--count", "--seed"],
            "to file mode (instances come from the files, not a generator)",
        );
        return cmd_batch_files(args);
    }
    reject_flags(
        args,
        &[
            "--shards",
            "--shard-index",
            "--out",
            "--cache-dir",
            "--cache-url",
            "--cache-urls",
            "--replication",
            "--token-file",
            "--cache-readonly",
            "--cells",
        ],
        "to generated mode; sharding and caching need --input-dir or --file-list",
    );
    cmd_batch_generated(args)
}

/// Exit with a usage error if any of `flags` is present — a flag that a
/// batch mode would silently ignore is almost certainly a mistaken
/// invocation (e.g. `--shard-index` without `--input-dir` would run the
/// *whole* generated workload while the user believes they ran 1/N).
fn reject_flags(args: &[String], flags: &[&str], mode: &str) {
    for flag in flags {
        if args.iter().any(|a| a == flag) {
            eprintln!("error: {flag} does not apply {mode}");
            std::process::exit(2);
        }
    }
}

/// Generate `count` instances per family and run every requested solver on
/// all of them, in parallel, via the engine's batch executor.
fn cmd_batch_generated(args: &[String]) -> ExitCode {
    use rand::SeedableRng;

    let families: Vec<DagFamily> = arg_value(args, "--families")
        .unwrap_or_else(|| "layered,random".into())
        .split(',')
        .map(family_by_name)
        .collect();
    let count: usize = arg_value(args, "--count").map(parse_or_usage).unwrap_or(50);
    let n: usize = arg_value(args, "-n").map(parse_or_usage).unwrap_or(30);
    let seed: u64 = arg_value(args, "--seed").map(parse_or_usage).unwrap_or(1);
    let solvers = solvers_from_args(args, "dc-nfdh,greedy,layered");
    let config = config_from_args(args);
    let mut jobs = Vec::with_capacity(families.len() * count);
    for family in &families {
        for i in 0..count {
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let inst = strip_packing::gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0));
            let dag = family.build(&mut rng, n);
            let request =
                SolveRequest::new(PrecInstance::new(inst, dag)).with_config(config.clone());
            jobs.push(BatchJob::new(format!("{}/{}", family.name(), i), request));
        }
    }

    let t0 = std::time::Instant::now();
    let (results, summary) = run_batch(&jobs, &solvers);
    let wall = t0.elapsed();

    // Deterministic summary table on stdout; timing (machine-dependent) on
    // stderr so output can be diffed across runs.
    println!(
        "| {:<16} | {:>6} | {:>11} | {:>7} | {:>10} | {:>9} | {:>13} |",
        "solver", "solved", "unsupported", "invalid", "mean ratio", "max ratio", "sum makespan"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(18),
        "-".repeat(8),
        "-".repeat(13),
        "-".repeat(9),
        "-".repeat(12),
        "-".repeat(11),
        "-".repeat(15)
    );
    for s in &summary.per_solver {
        println!(
            "| {:<16} | {:>6} | {:>11} | {:>7} | {:>10.3} | {:>9.3} | {:>13.3} |",
            s.solver,
            s.solved,
            s.unsupported,
            s.invalid,
            s.mean_ratio,
            s.max_ratio,
            s.total_makespan
        );
    }
    let failures: usize = summary.per_solver.iter().map(|s| s.invalid).sum();
    eprintln!(
        "batch: {} jobs x {} solvers = {} cells in {:.2}s wall",
        jobs.len(),
        solvers.len(),
        results.len(),
        wall.as_secs_f64()
    );
    if failures > 0 {
        eprintln!("error: {failures} cells produced invalid placements");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `spp cache stats`: summarize a cache directory — entry counts,
/// per-solver breakdown, bytes, distinct instances/configs. Deterministic
/// stdout so CI can diff or parse it.
fn cmd_cache_stats(dir: &Path) -> ExitCode {
    let stats = match solve_cache::dir_stats(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("entries      {}", stats.entries);
    println!("corrupt      {}", stats.corrupt);
    println!("bytes        {}", stats.bytes);
    println!("instances    {}", stats.instances);
    println!("configs      {}", stats.configs);
    // Age histogram: how much of the cache would an age-based
    // `gc --max-age` sweep — the input to choosing a threshold.
    let ages: Vec<String> = solve_cache::AGE_BUCKETS
        .iter()
        .zip(stats.ages)
        .map(|(label, count)| format!("{label}:{count}"))
        .collect();
    println!("age          {}", ages.join(" "));
    for (solver, count) in &stats.per_solver {
        println!("solver       {solver} {count}");
    }
    ExitCode::SUCCESS
}

/// `spp cache gc`: delete every file in the cache directory that can
/// never be served (corrupt, truncated, or mis-filed entries), plus —
/// with `--max-age <secs>` — every valid entry older than the threshold
/// (safe by construction: an evicted cell simply recomputes on next use).
fn cmd_cache_gc(dir: &Path, args: &[String]) -> ExitCode {
    let max_age =
        arg_value(args, "--max-age").map(|v| std::time::Duration::from_secs(parse_or_usage(v)));
    match solve_cache::gc_dir_aged(dir, max_age) {
        Ok(report) => {
            for path in &report.removed {
                eprintln!("removed {}", path.display());
            }
            println!(
                "gc: removed {} of {} files ({} aged out), kept {} entries",
                report.removed.len(),
                report.removed.len() + report.kept,
                report.expired,
                report.kept
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `spp cache verify`: spot-check cached cells against fresh solves.
///
/// Builds the instance list the same way file-mode `spp batch` does,
/// looks up every `(instance, solver, config)` cell that has a cache
/// entry, re-solves a deterministic sample of them, and diffs the cached
/// fields bit-for-bit against the recomputation. Any divergence — a
/// corrupted-but-parseable entry, a cache poisoned by an older binary, a
/// nondeterministic solver — is reported and fails the command.
fn cmd_cache_verify(dir: &Path, args: &[String]) -> ExitCode {
    let plan = match (
        arg_value(args, "--input-dir"),
        arg_value(args, "--file-list"),
    ) {
        (Some(d), None) => ShardPlan::from_dir(Path::new(&d), 1),
        (None, Some(list)) => ShardPlan::from_file_list(Path::new(&list), 1),
        _ => usage(),
    };
    let plan = match plan {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let solvers = solvers_from_args(args, "nfdh,ffdh,greedy,dc-nfdh");
    let config = config_from_args(args);
    let sample: usize = arg_value(args, "--sample")
        .map(parse_or_usage)
        .unwrap_or(16);
    let cache = match DiskCache::new(dir, true) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Every cached cell of this workload, in deterministic plan order.
    // One request per instance file; cells reference it by index instead
    // of cloning it once per solver.
    let mut requests = Vec::with_capacity(plan.len());
    let mut cached: Vec<(usize, usize, solve_cache::CachedCell)> = Vec::new();
    for path in plan.paths() {
        let prec = match strip_packing::gen::fileio::read_path(path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let request = SolveRequest::new(prec).with_config(config.clone());
        let digest = strip_packing::gen::fileio::digest(&request.prec);
        let req_index = requests.len();
        requests.push(request);
        for (s, solver) in solvers.iter().enumerate() {
            let key = solve_cache::CacheKey::new(digest, solver.name(), &config);
            if let Some(cell) = cache.get(&key) {
                cached.push((req_index, s, cell));
            }
        }
    }
    if cached.is_empty() {
        eprintln!(
            "cache verify: no entries in {} match this workload",
            dir.display()
        );
        return ExitCode::FAILURE;
    }
    // Deterministic sample: evenly strided across the cell list
    // (--sample 0 checks everything).
    let take = if sample == 0 {
        cached.len()
    } else {
        sample.min(cached.len())
    };
    let mut mismatches = 0usize;
    let mut checked = 0usize;
    for i in 0..take {
        // i·len/take spreads the sample across the whole list (head,
        // middle, and tail are all reachable) even when take < len.
        let (req_index, s, cell) = &cached[i * cached.len() / take];
        let (path, request, solver) = (
            &plan.paths()[*req_index],
            &requests[*req_index],
            &solvers[*s],
        );
        let fresh = strip_packing::engine::solve(solver.as_ref(), request);
        // The same classification rule the executor cached under — any
        // divergence is a real mismatch, not a rule drift.
        let (status, makespan, lb) = strip_packing::engine::classify_outcome(&fresh);
        checked += 1;
        if status != cell.status
            || makespan.to_bits() != cell.makespan.to_bits()
            || lb.to_bits() != cell.combined_lb.to_bits()
        {
            mismatches += 1;
            eprintln!(
                "MISMATCH {} x {}: cached ({} {:.17e} {:.17e}), fresh ({} {:.17e} {:.17e})",
                path.display(),
                solver.name(),
                cell.status.as_str(),
                cell.makespan,
                cell.combined_lb,
                status.as_str(),
                makespan,
                lb
            );
        }
    }
    println!(
        "cache verify: {checked} of {} cached cells re-solved, {mismatches} mismatches",
        cached.len()
    );
    if mismatches > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `spp cache` dispatcher: stats / gc / verify over `--cache-dir`.
fn cmd_cache(args: &[String]) -> ExitCode {
    let Some(action) = args.first().map(String::as_str) else {
        usage()
    };
    let Some(dir) = arg_value(args, "--cache-dir") else {
        usage()
    };
    let dir = PathBuf::from(dir);
    match action {
        "stats" => cmd_cache_stats(&dir),
        "gc" => cmd_cache_gc(&dir, &args[1..]),
        "verify" => cmd_cache_verify(&dir, &args[1..]),
        _ => usage(),
    }
}

/// `spp serve`: stand the shared solve cache (and a solve endpoint) behind
/// a dependency-free HTTP/1.1 service.
///
/// Prints the bound address on stdout as the first line —
/// `listening on http://host:port` — so wrapper scripts (and the CI
/// smoke job) can bind port 0 and scrape the chosen port. Runs until
/// killed; every request is logged nowhere (stderr stays quiet) but
/// counted, and `GET /stats` reports the counters.
fn cmd_serve(args: &[String]) -> ExitCode {
    use std::io::Write as _;
    let Some(dir) = arg_value(args, "--cache-dir") else {
        usage()
    };
    let mut config = ServeConfig::new(&dir);
    if let Some(addr) = arg_value(args, "--addr") {
        config.addr = addr;
    }
    if let Some(w) = arg_value(args, "--workers") {
        config.workers = parse_or_usage(w);
    }
    if let Some(m) = arg_value(args, "--max-body") {
        config.max_body = parse_or_usage(m);
    }
    config.readonly = args.iter().any(|a| a == "--cache-readonly");
    config.token = token_from_args(args);
    if let Some(b) = arg_value(args, "--max-budget-ms") {
        config.max_budget_ms = parse_or_usage(b);
    }
    if let Some(s) = arg_value(args, "--max-improve-streams") {
        config.max_improve_streams = parse_or_usage(s);
    }
    keepalive_from_args(args, &mut config);
    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on http://{}", server.local_addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "serving cache dir {dir}{} (io-mode {}); endpoints: GET/PUT /cache/<key>, POST /solve, \
         GET /stats",
        if config.readonly { " (read-only)" } else { "" },
        server.io_mode().name()
    );
    server.run();
    ExitCode::SUCCESS
}

/// Apply the connection tuning flags shared by `spp serve` and
/// `spp dispatch`: keep-alive budgets and the I/O mode.
fn keepalive_from_args(args: &[String], config: &mut ServeConfig) {
    if let Some(n) = arg_value(args, "--keepalive-requests") {
        config.keepalive_requests = parse_or_usage(n);
    }
    if let Some(ms) = arg_value(args, "--idle-timeout-ms") {
        config.idle_timeout = std::time::Duration::from_millis(parse_or_usage(ms));
    }
    if let Some(mode) = io_mode_from_args(args) {
        config.io_mode = mode;
    }
}

/// Parse `--io-mode <auto|blocking|event>` (shared by `spp serve`,
/// `spp dispatch`, and `spp bench serve`).
fn io_mode_from_args(args: &[String]) -> Option<IoMode> {
    arg_value(args, "--io-mode").map(|m| match IoMode::parse(&m) {
        Ok(mode) => mode,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    })
}

/// `spp bench` dispatcher — `serve` is the only target so far.
fn cmd_bench(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("serve") => cmd_bench_serve(&args[1..]),
        _ => usage(),
    }
}

/// `spp bench serve`: load-test the HTTP serving layer and prove its
/// throughput with a number.
///
/// Without `--url`, spawns an in-process cache server over a scratch
/// directory (so the command is self-contained); with `--url`, drives a
/// server someone else started. The workload is either repeated
/// `GET /cache/<key>` hits against one seeded entry (`cache-hit`, the
/// default — the hot path of a warm fleet) or repeated `POST /solve` of
/// one small instance (`solve` — cache-backed after the first miss).
///
/// Each requested mode (`keepalive`, `close`, or `both`) runs the same
/// workload through `spp_serve::bench::run_bench`: closed-loop by
/// default, open-loop at `--rate` requests/second with latency measured
/// from the scheduled send time (coordinated-omission corrected). The
/// table goes to stdout; `--out` additionally writes the runs as
/// `spp-bench` records — `experiment` "serve", `algo` the mode, `family`
/// the workload, `n` completed requests, `height` RPS, `ratio` p99 ms —
/// the `BENCH_SERVE.json` baseline CI smoke-checks. With `--io-mode`
/// and/or `--idle-clients` the family string is suffixed
/// (`cache-hit@event+idle500`) so runs stay distinguishable in the same
/// fixed record schema.
///
/// `--idle-clients N` measures RPS-vs-idle-count: every mode runs once
/// with zero idle connections and once with N idle keep-alive
/// connections parked alongside the active clients — the load shape
/// `--io-mode event` exists for (idle connections must cost ~nothing)
/// and the one where blocking mode visibly degrades (idle connections
/// each pin a pool worker for the pressured idle budget).
///
/// Exits nonzero if any request errored (or any idle connection failed
/// to stand up): a load test that quietly dropped requests would prove
/// nothing.
fn cmd_bench_serve(args: &[String]) -> ExitCode {
    use strip_packing::serve::bench::{run_bench, BenchConfig, Mode, Stop, Target};
    use strip_packing::serve::http;

    let clients: usize = arg_value(args, "--clients")
        .map(parse_or_usage)
        .unwrap_or(4);
    let idle_clients: Option<usize> = arg_value(args, "--idle-clients").map(parse_or_usage);
    let io_mode = io_mode_from_args(args);
    let modes: Vec<Mode> = match arg_value(args, "--mode").as_deref() {
        None | Some("both") => vec![Mode::Keepalive, Mode::Close],
        Some("keepalive") => vec![Mode::Keepalive],
        Some("close") => vec![Mode::Close],
        Some(other) => {
            eprintln!("error: unknown mode {other:?} (expected keepalive, close or both)");
            return ExitCode::from(2);
        }
    };
    let workload = arg_value(args, "--workload").unwrap_or_else(|| "cache-hit".into());
    let stop = match (
        arg_value(args, "--requests"),
        arg_value(args, "--duration-ms"),
    ) {
        (Some(_), Some(_)) => {
            eprintln!("error: --requests and --duration-ms are mutually exclusive");
            return ExitCode::from(2);
        }
        (Some(n), None) => Stop::Requests(parse_or_usage(n)),
        (None, ms) => Stop::Duration(std::time::Duration::from_millis(
            ms.map(parse_or_usage).unwrap_or(2000),
        )),
    };
    let rate: Option<f64> = arg_value(args, "--rate").map(parse_or_usage);

    // The server under test: the user's (--url) or our own scratch one.
    let (authority, server, io_label) = match arg_value(args, "--url") {
        Some(url) => {
            reject_flags(
                args,
                &["--workers", "--io-mode"],
                "with --url (they configure the self-spawned server)",
            );
            match http::parse_base_url(&url) {
                Ok(a) => (a, None, None),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => {
            let dir = std::env::temp_dir().join(format!("spp_bench_serve_{}", std::process::id()));
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            let mut config = ServeConfig::new(&dir);
            config.addr = "127.0.0.1:0".into();
            if let Some(w) = arg_value(args, "--workers") {
                config.workers = parse_or_usage(w);
            }
            if let Some(mode) = io_mode {
                config.io_mode = mode;
            }
            let bound = match Server::bind(&config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Record the *resolved* mode (an `event` ask on a platform
            // without epoll runs blocking — the label must say so).
            let label = io_mode.map(|_| bound.io_mode().name());
            let handle = bound.spawn();
            eprintln!(
                "bench: spawned scratch server on http://{} (io-mode {})",
                handle.local_addr(),
                label.unwrap_or("auto")
            );
            (handle.authority(), Some(handle), label)
        }
    };

    // One small deterministic instance backs both workloads: its cached
    // cell for cache-hit GETs, its JSON body for /solve POSTs.
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let inst = strip_packing::gen::rects::uniform(&mut rng, 12, (0.05, 0.95), (0.05, 1.0));
    let dag = family_by_name("empty").build(&mut rng, 12);
    let request = SolveRequest::new(PrecInstance::new(inst, dag));
    let config = SolveConfig::default();
    let target = match workload.as_str() {
        "cache-hit" => {
            // Seed the entry the run will hammer, through the same PUT
            // endpoint any worker uses — a 404 storm would measure the
            // error path, not serving.
            let registry = Registry::builtin();
            let solver = match registry.get_or_err("nfdh") {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let fresh = strip_packing::engine::solve(solver.as_ref(), &request);
            let (status, makespan, combined_lb) = strip_packing::engine::classify_outcome(&fresh);
            let cell = solve_cache::CachedCell {
                status,
                makespan,
                combined_lb,
                improved_from: None,
            };
            let digest = strip_packing::gen::fileio::digest(&request.prec);
            let key = solve_cache::CacheKey::new(digest, "nfdh", &config);
            let file_name = key.file_name();
            let stem = file_name.strip_suffix(".json").unwrap_or(&file_name);
            let path = format!("/cache/{stem}");
            let body = solve_cache::entry_to_json(&key, &cell);
            match http::roundtrip(&authority, "PUT", &path, &body) {
                Ok(r) if r.status == 204 || r.status == 200 => {}
                Ok(r) => {
                    eprintln!(
                        "error: seeding PUT {path} rejected with HTTP {}: {}",
                        r.status,
                        r.body.trim()
                    );
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("error: seeding PUT {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Target {
                method: "GET".into(),
                path_and_query: path,
                body: String::new(),
            }
        }
        "solve" => Target {
            method: "POST".into(),
            path_and_query: "/solve?solver=nfdh".into(),
            body: strip_packing::gen::fileio::to_json(&request.prec),
        },
        other => {
            eprintln!("error: unknown workload {other:?} (expected cache-hit or solve)");
            return ExitCode::from(2);
        }
    };

    // Every mode runs once per idle level: just [0] normally, or
    // [0, N] with --idle-clients so the zero-idle baseline and the
    // idle-loaded run land side by side in the same table and records.
    let idle_levels: Vec<usize> = match idle_clients {
        Some(n) if n > 0 => vec![0, n],
        _ => vec![0],
    };
    // `family` keeps runs distinguishable inside the fixed BenchRecord
    // schema: workload, then "@<io-mode>" when one was asked for, then
    // "+idle<N>" when idle clients were.
    let family_of = |idle: usize| {
        let mut family = workload.clone();
        if let Some(label) = io_label {
            family.push('@');
            family.push_str(label);
        }
        if idle_clients.is_some() {
            family.push_str(&format!("+idle{idle}"));
        }
        family
    };
    println!(
        "| {:<9} | {:>6} | {:>9} | {:>6} | {:>7} | {:>9} | {:>8} | {:>8} | {:>8} | {:>8} |",
        "mode",
        "idle",
        "requests",
        "errors",
        "wall s",
        "rps",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "p999 ms"
    );
    let mut records = Vec::new();
    let mut rps_by_mode = Vec::new();
    let mut rps_by_mode_idle = Vec::new();
    let mut total_errors = 0u64;
    for mode in modes {
        for &idle in &idle_levels {
            let result = run_bench(&BenchConfig {
                authority: authority.clone(),
                clients,
                mode,
                target: target.clone(),
                stop,
                rate,
                idle_clients: idle,
            });
            println!(
                "| {:<9} | {:>6} | {:>9} | {:>6} | {:>7.2} | {:>9.1} | {:>8.3} | {:>8.3} | \
                 {:>8.3} | {:>8.3} |",
                mode.name(),
                idle,
                result.requests,
                result.errors,
                result.wall_s,
                result.rps,
                result.latency_ms(0.50),
                result.latency_ms(0.95),
                result.latency_ms(0.99),
                result.latency_ms(0.999),
            );
            if result.idle_errors > 0 {
                eprintln!(
                    "bench: {} of {idle} idle connections failed to stand up ({} mode)",
                    result.idle_errors,
                    mode.name()
                );
            }
            records.push(spp_bench::json::BenchRecord {
                experiment: "serve".into(),
                algo: mode.name().into(),
                family: family_of(idle),
                n: result.requests as usize,
                height: result.rps,
                ratio: result.latency_ms(0.99),
                wall_s: result.wall_s,
            });
            if idle == 0 {
                rps_by_mode.push((mode, result.rps));
            } else {
                rps_by_mode_idle.push((mode, idle, result.rps));
            }
            total_errors += result.errors + result.idle_errors;
        }
    }
    let keepalive = rps_by_mode
        .iter()
        .find(|(m, _)| *m == Mode::Keepalive)
        .map(|(_, r)| *r);
    let close = rps_by_mode
        .iter()
        .find(|(m, _)| *m == Mode::Close)
        .map(|(_, r)| *r);
    if let (Some(ka), Some(cl)) = (keepalive, close) {
        if cl > 0.0 {
            eprintln!("bench: keepalive/close rps ratio {:.2}x", ka / cl);
        }
    }
    // RPS retention under idle load — the number `--io-mode event`
    // exists to hold near 100%.
    for (mode, idle, rps) in &rps_by_mode_idle {
        if let Some((_, base)) = rps_by_mode.iter().find(|(m, _)| m == mode) {
            if *base > 0.0 {
                eprintln!(
                    "bench: {} rps with {idle} idle clients: {rps:.1} ({:.0}% of zero-idle)",
                    mode.name(),
                    100.0 * rps / base
                );
            }
        }
    }
    if let Some(path) = arg_value(args, "--out") {
        if let Err(e) = std::fs::write(&path, spp_bench::json::to_json(&records)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bench: wrote {} records to {path}", records.len());
    }
    if let Some(server) = server {
        server.shutdown();
    }
    if total_errors > 0 {
        eprintln!("error: {total_errors} requests failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("suite") => cmd_suite(&args[1..]),
        Some("pack") => cmd_pack(&args[1..]),
        // `solve` is `pack` under its budget-era name: one-shot solving
        // is the budget_ms=0 special case of budgeted solving.
        Some("solve") => cmd_pack(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("dispatch") => cmd_dispatch(&args[1..]),
        Some("work") => cmd_work(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("algos") => cmd_algos(),
        _ => usage(),
    }
}
