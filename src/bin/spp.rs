//! `spp` — command-line front end for the strip-packing workspace.
//!
//! ```text
//! spp gen   --family layered -n 40 --seed 7 > inst.spp
//! spp pack  inst.spp --algo dc-nfdh --render ascii
//! spp pack  inst.spp --algo greedy --render svg > packing.svg
//! spp bounds inst.spp
//! spp batch --families layered,random --count 50 -n 30 --algos dc-nfdh,greedy,layered
//! spp algos
//! ```
//!
//! Algorithms are resolved through the engine registry
//! (`strip_packing::engine::Registry`), so `spp algos` and every error
//! message list exactly the solvers that exist — nothing is hard-coded in
//! this binary. Instances use the `spp v1` text format of
//! `spp-gen::textio` (`item <id> <w> <h> <release>` / `edge <pred> <succ>`
//! lines).

use std::io::Read as _;
use std::process::ExitCode;

use strip_packing::dag::PrecInstance;
use strip_packing::engine::{run_batch, BatchJob, Registry, SolveConfig, SolveRequest, Validation};
use strip_packing::gen::rects::DagFamily;

fn usage() -> ! {
    eprintln!(
        "usage:\n  spp gen --family <name> [-n <count>] [--seed <u64>] [--uniform-height]\n  spp pack <file|-> [--algo <name>] [--render <none|ascii|svg>]\n          [--epsilon <f64>] [-k <usize>] [--shelf-r <f64>] [--strict]\n  spp bounds <file|->\n  spp batch [--families <f1,f2,..>] [--count <per-family>] [-n <size>]\n          [--seed <u64>] [--algos <a1,a2,..>]\n  spp algos\n\nrun `spp algos` for the algorithm registry with capability flags"
    );
    std::process::exit(2);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or_usage<T: std::str::FromStr>(v: String) -> T {
    v.parse().unwrap_or_else(|_| usage())
}

fn family_by_name(name: &str) -> DagFamily {
    DagFamily::ALL
        .into_iter()
        .find(|f| f.name() == name)
        .unwrap_or_else(|| {
            let known: Vec<&str> = DagFamily::ALL.iter().map(|f| f.name()).collect();
            eprintln!(
                "error: unknown family {name:?}; known families: {}",
                known.join(" ")
            );
            std::process::exit(2);
        })
}

fn config_from_args(args: &[String]) -> SolveConfig {
    let mut config = SolveConfig::default();
    if let Some(e) = arg_value(args, "--epsilon") {
        config.epsilon = parse_or_usage(e);
    }
    if let Some(k) = arg_value(args, "-k") {
        config.k = parse_or_usage(k);
    }
    if let Some(r) = arg_value(args, "--shelf-r") {
        config.shelf_r = parse_or_usage(r);
    }
    config.strict = args.iter().any(|a| a == "--strict");
    config
}

fn read_instance(path: &str) -> PrecInstance {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| {
                eprintln!("error: cannot read stdin: {e}");
                std::process::exit(1);
            });
        buf
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    strip_packing::gen::textio::from_text(&text).unwrap_or_else(|e| {
        eprintln!("error: cannot parse instance: {e}");
        std::process::exit(1);
    })
}

fn cmd_gen(args: &[String]) -> ExitCode {
    use rand::SeedableRng;
    let family_name = arg_value(args, "--family").unwrap_or_else(|| "layered".into());
    let n: usize = arg_value(args, "-n").map(parse_or_usage).unwrap_or(30);
    let seed: u64 = arg_value(args, "--seed").map(parse_or_usage).unwrap_or(1);
    let family = family_by_name(&family_name);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inst = if args.iter().any(|a| a == "--uniform-height") {
        strip_packing::gen::rects::uniform_height(&mut rng, n, (0.05, 0.95))
    } else {
        strip_packing::gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0))
    };
    let dag = family.build(&mut rng, n);
    let prec = PrecInstance::new(inst, dag);
    print!("{}", strip_packing::gen::textio::to_text(&prec));
    ExitCode::SUCCESS
}

fn cmd_pack(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else { usage() };
    let prec = read_instance(path);
    let algo = arg_value(args, "--algo").unwrap_or_else(|| "dc-nfdh".into());

    let registry = Registry::builtin();
    let solver = match registry.get_or_err(&algo) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let request = SolveRequest::new(prec).with_config(config_from_args(args));
    let report = match strip_packing::engine::solve(solver.as_ref(), &request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match &report.validation {
        Validation::Passed | Validation::Skipped => {}
        Validation::PassedIgnoring(ignored) => {
            let kinds: Vec<String> = ignored.iter().map(|c| c.to_string()).collect();
            eprintln!(
                "note: {algo} does not honor {} constraints; they were ignored \
                 (pass --strict to refuse instead)",
                kinds.join("+")
            );
        }
        Validation::Failed(e) => {
            eprintln!("internal error: produced invalid placement: {e}");
            return ExitCode::FAILURE;
        }
    }

    let prec = &request.prec;
    eprintln!(
        "algorithm {algo}: height {:.4} (AREA LB {:.4}, F LB {:.4}, ratio {:.3})",
        report.makespan,
        report.bounds.area,
        report.bounds.critical_path,
        report.ratio()
    );
    match arg_value(args, "--render").as_deref() {
        None | Some("none") => {
            for it in prec.inst.items() {
                let p = report.placement.pos(it.id);
                println!("place {} {:.9} {:.9}", it.id, p.x, p.y);
            }
        }
        Some("ascii") => {
            print!(
                "{}",
                strip_packing::core::render::ascii(
                    &prec.inst,
                    &report.placement,
                    60,
                    report.makespan / 30.0
                )
            );
        }
        Some("svg") => {
            print!(
                "{}",
                strip_packing::core::render::svg(&prec.inst, &report.placement, 400.0)
            );
        }
        Some(other) => {
            eprintln!("error: unknown renderer {other}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_bounds(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else { usage() };
    let prec = read_instance(path);
    println!("n            {}", prec.len());
    println!("edges        {}", prec.dag.edge_count());
    println!("AREA         {:.6}", prec.area_lb());
    println!("F (crit path){:>10.6}", prec.critical_lb());
    println!(
        "combined LB  {:.6}",
        strip_packing::precedence::combined::combined_lower_bound(&prec)
    );
    println!(
        "T2.3 bound   {:.6}",
        strip_packing::precedence::dc_bound(&prec)
    );
    ExitCode::SUCCESS
}

/// List the registry: one line per solver with capability flags.
fn cmd_algos() -> ExitCode {
    let registry = Registry::builtin();
    println!("{:<16} {:<12} description", "name", "honors");
    for e in registry.entries() {
        let mut honors = Vec::new();
        if e.capabilities.precedence {
            honors.push("prec");
        }
        if e.capabilities.release {
            honors.push("release");
        }
        if e.capabilities.online {
            honors.push("online");
        }
        if e.capabilities.a_bound {
            honors.push("A-bound");
        }
        if e.capabilities.uniform_height_only {
            honors.push("uniform-h");
        }
        let honors = if honors.is_empty() {
            "-".to_string()
        } else {
            honors.join(",")
        };
        println!("{:<16} {:<12} {}", e.name, honors, e.summary);
    }
    ExitCode::SUCCESS
}

/// Generate `count` instances per family and run every requested solver on
/// all of them, in parallel, via the engine's batch executor.
fn cmd_batch(args: &[String]) -> ExitCode {
    use rand::SeedableRng;

    let families: Vec<DagFamily> = arg_value(args, "--families")
        .unwrap_or_else(|| "layered,random".into())
        .split(',')
        .map(family_by_name)
        .collect();
    let count: usize = arg_value(args, "--count").map(parse_or_usage).unwrap_or(50);
    let n: usize = arg_value(args, "-n").map(parse_or_usage).unwrap_or(30);
    let seed: u64 = arg_value(args, "--seed").map(parse_or_usage).unwrap_or(1);
    let algos: Vec<String> = arg_value(args, "--algos")
        .unwrap_or_else(|| "dc-nfdh,greedy,layered".into())
        .split(',')
        .map(str::to_string)
        .collect();

    let registry = Registry::builtin();
    let mut solvers = Vec::new();
    for name in &algos {
        match registry.get_or_err(name) {
            Ok(s) => solvers.push(s),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let config = config_from_args(args);
    let mut jobs = Vec::with_capacity(families.len() * count);
    for family in &families {
        for i in 0..count {
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let inst = strip_packing::gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0));
            let dag = family.build(&mut rng, n);
            let request =
                SolveRequest::new(PrecInstance::new(inst, dag)).with_config(config.clone());
            jobs.push(BatchJob::new(format!("{}/{}", family.name(), i), request));
        }
    }

    let t0 = std::time::Instant::now();
    let (results, summary) = run_batch(&jobs, &solvers);
    let wall = t0.elapsed();

    // Deterministic summary table on stdout; timing (machine-dependent) on
    // stderr so output can be diffed across runs.
    println!(
        "| {:<16} | {:>6} | {:>11} | {:>7} | {:>10} | {:>9} | {:>13} |",
        "solver", "solved", "unsupported", "invalid", "mean ratio", "max ratio", "sum makespan"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(18),
        "-".repeat(8),
        "-".repeat(13),
        "-".repeat(9),
        "-".repeat(12),
        "-".repeat(11),
        "-".repeat(15)
    );
    for s in &summary.per_solver {
        println!(
            "| {:<16} | {:>6} | {:>11} | {:>7} | {:>10.3} | {:>9.3} | {:>13.3} |",
            s.solver,
            s.solved,
            s.unsupported,
            s.invalid,
            s.mean_ratio,
            s.max_ratio,
            s.total_makespan
        );
    }
    let failures: usize = summary.per_solver.iter().map(|s| s.invalid).sum();
    eprintln!(
        "batch: {} jobs x {} solvers = {} cells in {:.2}s wall",
        jobs.len(),
        solvers.len(),
        results.len(),
        wall.as_secs_f64()
    );
    if failures > 0 {
        eprintln!("error: {failures} cells produced invalid placements");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("pack") => cmd_pack(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("algos") => cmd_algos(),
        _ => usage(),
    }
}
