//! `spp` — command-line front end for the strip-packing workspace.
//!
//! ```text
//! spp gen  --family layered -n 40 --seed 7 > inst.spp
//! spp pack inst.spp --algo dc-nfdh --render ascii
//! spp pack inst.spp --algo greedy --render svg > packing.svg
//! spp bounds inst.spp
//! ```
//!
//! Instances use the `spp v1` text format of `spp-gen::textio`
//! (`item <id> <w> <h> <release>` / `edge <pred> <succ>` lines).

use std::io::Read as _;
use std::process::ExitCode;

use strip_packing::dag::PrecInstance;
use strip_packing::pack::{packer_by_name, Packer, StripPacker};

fn usage() -> ! {
    eprintln!(
        "usage:\n  spp gen --family <chains|layered|random|fork-join|series-parallel|out-tree|empty>\n          [-n <count>] [--seed <u64>] [--uniform-height]\n  spp pack <file|-> [--algo <dc-nfdh|dc-wsnf|dc-ffdh|greedy|layered|shelf-f|<packer>>]\n          [--render <none|ascii|svg>]\n  spp bounds <file|->\n\npackers: nfdh ffdh bfdh sleator skyline wsnf (precedence edges ignored)"
    );
    std::process::exit(2);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn read_instance(path: &str) -> PrecInstance {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| {
                eprintln!("error: cannot read stdin: {e}");
                std::process::exit(1);
            });
        buf
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    strip_packing::gen::textio::from_text(&text).unwrap_or_else(|e| {
        eprintln!("error: cannot parse instance: {e}");
        std::process::exit(1);
    })
}

fn cmd_gen(args: &[String]) -> ExitCode {
    use rand::SeedableRng;
    let family_name = arg_value(args, "--family").unwrap_or_else(|| "layered".into());
    let n: usize = arg_value(args, "-n")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(30);
    let seed: u64 = arg_value(args, "--seed")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(1);
    let family = strip_packing::gen::rects::DagFamily::ALL
        .into_iter()
        .find(|f| f.name() == family_name)
        .unwrap_or_else(|| {
            eprintln!("error: unknown family {family_name}");
            std::process::exit(2);
        });
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inst = if args.iter().any(|a| a == "--uniform-height") {
        strip_packing::gen::rects::uniform_height(&mut rng, n, (0.05, 0.95))
    } else {
        strip_packing::gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0))
    };
    let dag = family.build(&mut rng, n);
    let prec = PrecInstance::new(inst, dag);
    print!("{}", strip_packing::gen::textio::to_text(&prec));
    ExitCode::SUCCESS
}

fn cmd_pack(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else { usage() };
    let prec = read_instance(path);
    let algo = arg_value(args, "--algo").unwrap_or_else(|| "dc-nfdh".into());
    let placement = match algo.as_str() {
        "dc-nfdh" => strip_packing::precedence::dc(&prec, &Packer::Nfdh),
        "dc-wsnf" => strip_packing::precedence::dc(&prec, &Packer::Wsnf),
        "dc-ffdh" => strip_packing::precedence::dc(&prec, &Packer::Ffdh),
        "greedy" => strip_packing::precedence::greedy_skyline(&prec),
        "layered" => strip_packing::precedence::layered_pack(&prec, &Packer::Nfdh),
        "shelf-f" => strip_packing::precedence::shelf_next_fit(&prec).placement,
        other => match packer_by_name(other) {
            Some(p) => p.pack(&prec.inst),
            None => {
                eprintln!("error: unknown algorithm {other}");
                return ExitCode::from(2);
            }
        },
    };
    // DC and the raw packers ignore release times; validate accordingly
    let release_free = matches!(
        algo.as_str(),
        "dc-nfdh" | "dc-wsnf" | "dc-ffdh" | "shelf-f"
    ) || packer_by_name(&algo).is_some();
    let check = if release_free {
        let stripped = PrecInstance::new(
            strip_packing::core::Instance::new(
                prec.inst
                    .items()
                    .iter()
                    .map(|it| strip_packing::core::Item::new(it.id, it.w, it.h))
                    .collect(),
            )
            .expect("valid"),
            if packer_by_name(&algo).is_some() {
                strip_packing::dag::Dag::empty(prec.len())
            } else {
                prec.dag.clone()
            },
        );
        stripped.validate(&placement)
    } else {
        prec.validate(&placement)
    };
    if let Err(e) = check {
        eprintln!("internal error: produced invalid placement: {e}");
        return ExitCode::FAILURE;
    }

    let h = placement.height(&prec.inst);
    eprintln!(
        "algorithm {algo}: height {:.4} (AREA LB {:.4}, F LB {:.4})",
        h,
        prec.area_lb(),
        prec.critical_lb()
    );
    match arg_value(args, "--render").as_deref() {
        None | Some("none") => {
            for it in prec.inst.items() {
                let p = placement.pos(it.id);
                println!("place {} {:.9} {:.9}", it.id, p.x, p.y);
            }
        }
        Some("ascii") => {
            print!(
                "{}",
                strip_packing::core::render::ascii(&prec.inst, &placement, 60, h / 30.0)
            );
        }
        Some("svg") => {
            print!(
                "{}",
                strip_packing::core::render::svg(&prec.inst, &placement, 400.0)
            );
        }
        Some(other) => {
            eprintln!("error: unknown renderer {other}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_bounds(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else { usage() };
    let prec = read_instance(path);
    println!("n            {}", prec.len());
    println!("edges        {}", prec.dag.edge_count());
    println!("AREA         {:.6}", prec.area_lb());
    println!("F (crit path){:>10.6}", prec.critical_lb());
    println!(
        "combined LB  {:.6}",
        strip_packing::precedence::combined::combined_lower_bound(&prec)
    );
    println!(
        "T2.3 bound   {:.6}",
        strip_packing::precedence::dc_bound(&prec)
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("pack") => cmd_pack(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        _ => usage(),
    }
}
