//! # strip-packing — facade crate
//!
//! One-stop re-export of the whole workspace reproducing
//! *"Strip packing with precedence constraints and strip packing with
//! release times"* (Augustine, Banerjee, Irani; SPAA 2006 / TCS 2009).
//!
//! ```
//! use strip_packing::core::Instance;
//!
//! let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 2.0)]).unwrap();
//! let pl = strip_packing::pack::nfdh(&inst);
//! strip_packing::core::validate::assert_valid(&inst, &pl);
//! assert!(pl.height(&inst) <= 2.0 * inst.total_area() + inst.max_height());
//! ```
//!
//! Module map:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | items, instances, placements, validation, lower bounds |
//! | [`dag`] | precedence DAG substrate, critical path `F(s)` |
//! | [`engine`] | unified solver engine: `Solver` trait, registry, batch executor |
//! | [`pack`] | unconstrained strip packing (NFDH/FFDH/BFDH/Sleator/skyline) |
//! | [`precedence`] | §2: the `DC` algorithm, uniform-height shelf `F`, GGJY bin packing |
//! | [`lp`] | two-phase simplex LP solver |
//! | [`release`] | §3: APTAS for strip packing with release times |
//! | [`exact`] | exact solvers for small instances |
//! | [`fpga`] | K-column reconfigurable-device model |
//! | [`gen`] | workload generators incl. the paper's adversarial families |
//! | [`par`] | minimal fork-join parallel runtime over std scoped threads |
//! | [`serve`] | HTTP front end: shared cache server + solve endpoint (`spp serve`) |
//!
//! Algorithm lookup goes through the engine's registry:
//!
//! ```
//! use strip_packing::engine::{Registry, SolveRequest};
//!
//! let registry = Registry::builtin();
//! let solver = registry.get("dc-nfdh").unwrap();
//! let inst = strip_packing::core::Instance::from_dims(&[(0.5, 1.0)]).unwrap();
//! let report = strip_packing::engine::solve(&*solver, &SolveRequest::unconstrained(inst)).unwrap();
//! assert!(report.validation.passed());
//! ```

pub use spp_core as core;
pub use spp_dag as dag;
pub use spp_engine as engine;
pub use spp_exact as exact;
pub use spp_fpga as fpga;
pub use spp_gen as gen;
pub use spp_lp as lp;
pub use spp_pack as pack;
pub use spp_par as par;
pub use spp_precedence as precedence;
pub use spp_release as release;
pub use spp_serve as serve;
