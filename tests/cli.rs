//! End-to-end tests of the `spp` command-line tool.

use std::process::{Command, Stdio};

fn spp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spp"))
}

#[test]
fn gen_pack_roundtrip() {
    let gen = spp()
        .args(["gen", "--family", "layered", "-n", "25", "--seed", "9"])
        .output()
        .expect("spawn spp gen");
    assert!(gen.status.success());
    let text = String::from_utf8(gen.stdout).unwrap();
    assert!(text.starts_with("spp v1"));
    // parse back through the library and check it is the same instance
    let prec = strip_packing::gen::textio::from_text(&text).unwrap();
    assert_eq!(prec.len(), 25);

    // pipe into `spp pack -`
    let mut child = spp()
        .args(["pack", "-", "--algo", "dc-nfdh"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn spp pack");
    use std::io::Write as _;
    child
        .stdin
        .take()
        .unwrap()
        .write_all(text.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    // one `place` line per item, parseable back into a valid placement
    let mut pl = strip_packing::core::Placement::zeroed(25);
    let mut count = 0;
    for line in stdout.lines() {
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("place"));
        let id: usize = parts.next().unwrap().parse().unwrap();
        let x: f64 = parts.next().unwrap().parse().unwrap();
        let y: f64 = parts.next().unwrap().parse().unwrap();
        pl.set(id, x, y);
        count += 1;
    }
    assert_eq!(count, 25);
    prec.assert_valid(&pl);
}

#[test]
fn bounds_subcommand_reports_all_bounds() {
    let gen = spp()
        .args(["gen", "--family", "chains", "-n", "10", "--seed", "1"])
        .output()
        .unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_inst.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args(["bounds", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for key in ["AREA", "F (crit path)", "combined LB", "T2.3 bound"] {
        assert!(text.contains(key), "missing {key} in:\n{text}");
    }
}

#[test]
fn svg_render_is_emitted() {
    let gen = spp()
        .args(["gen", "-n", "8", "--seed", "2"])
        .output()
        .unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_svg.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args([
            "pack",
            tmp.to_str().unwrap(),
            "--algo",
            "greedy",
            "--render",
            "svg",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let svg = String::from_utf8(out.stdout).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("</svg>"));
}

#[test]
fn unknown_algorithm_lists_the_registry() {
    let gen = spp().args(["gen", "-n", "4"]).output().unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_bad.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap(), "--algo", "quantum"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown solver"), "{stderr}");
    // The message must come from the live registry, not a hard-coded list.
    for name in strip_packing::engine::Registry::builtin().names() {
        assert!(
            stderr.contains(name),
            "registry entry {name} missing:\n{stderr}"
        );
    }
}

#[test]
fn unknown_family_lists_known_families() {
    let out = spp()
        .args(["gen", "--family", "moebius", "-n", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown family"), "{stderr}");
    for f in strip_packing::gen::rects::DagFamily::ALL {
        assert!(
            stderr.contains(f.name()),
            "family {} missing:\n{stderr}",
            f.name()
        );
    }
}

#[test]
fn algos_subcommand_lists_every_registry_entry() {
    let out = spp().args(["algos"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in strip_packing::engine::Registry::builtin().names() {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn batch_runs_hundreds_of_cells_deterministically() {
    let run = || {
        spp()
            .args([
                "batch",
                "--families",
                "layered,random",
                "--count",
                "50",
                "-n",
                "12",
                "--seed",
                "3",
                "--algos",
                "dc-nfdh,greedy,layered",
            ])
            .output()
            .unwrap()
    };
    let out = run();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8(out.stdout).unwrap();
    for algo in ["dc-nfdh", "greedy", "layered"] {
        assert!(table.contains(algo), "missing {algo} in:\n{table}");
    }
    // 2 families x 50 instances x 3 solvers = 300 cells.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("100 jobs x 3 solvers = 300 cells"),
        "{stderr}"
    );
    // Deterministic: stdout (counts/ratios table) is identical across runs.
    let again = run();
    assert_eq!(table, String::from_utf8(again.stdout).unwrap());
}

#[test]
fn batch_rejects_unknown_solver_with_listing() {
    let out = spp()
        .args(["batch", "--count", "2", "--algos", "nfdh,warp-drive"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown solver") && stderr.contains("warp-drive"));
}

#[test]
fn gen_emits_json_that_pack_accepts() {
    let gen = spp()
        .args([
            "gen", "--family", "layered", "-n", "10", "--seed", "4", "--format", "json",
        ])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let text = String::from_utf8(gen.stdout).unwrap();
    assert!(text.starts_with('{'), "{text}");
    let prec = strip_packing::gen::fileio::from_json(&text).unwrap();
    assert_eq!(prec.len(), 10);

    // and `spp pack` reads it from a .json path
    let tmp = std::env::temp_dir().join("spp_cli_test_inst.json");
    std::fs::write(&tmp, &text).unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap(), "--algo", "greedy"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn json_parse_errors_name_field_and_line() {
    let tmp = std::env::temp_dir().join("spp_cli_test_badfield.json");
    std::fs::write(
        &tmp,
        "{\"format\": \"spp-instance\", \"version\": 1,\n \"items\": [\n {\"id\": 0, \"w\": 2.5, \"h\": 1, \"release\": 0}\n ], \"edges\": []}",
    )
    .unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("items[0].w") && stderr.contains("line 3"),
        "{stderr}"
    );
}

/// The acceptance-criterion pipeline end to end: a suite of instance
/// files run as 4 separate shard *processes*, merged, must be
/// byte-identical on stdout to the single-process run — and resumable
/// via a manifest directory.
#[test]
fn sharded_batch_merge_is_byte_identical_to_single_process() {
    let dir = std::env::temp_dir().join("spp_cli_test_shards");
    let _ = std::fs::remove_dir_all(&dir);
    let suite_dir = dir.join("instances");
    let gen = spp()
        .args([
            "suite",
            "--out-dir",
            suite_dir.to_str().unwrap(),
            "--count",
            "20",
            "-n",
            "14",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let algos = "nfdh,ffdh,greedy,dc-nfdh,combined-greedy";
    let single = spp()
        .args([
            "batch",
            "--input-dir",
            suite_dir.to_str().unwrap(),
            "--algos",
            algos,
            "--cells",
        ])
        .output()
        .unwrap();
    assert!(
        single.status.success(),
        "{}",
        String::from_utf8_lossy(&single.stderr)
    );

    // Four shard processes, each writing a portable report file.
    let mut report_paths = Vec::new();
    for i in 0..4 {
        let report = dir.join(format!("shard{i}.json"));
        let out = spp()
            .args([
                "batch",
                "--input-dir",
                suite_dir.to_str().unwrap(),
                "--algos",
                algos,
                "--shards",
                "4",
                "--shard-index",
                &i.to_string(),
                "--out",
                report.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "shard {i}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        report_paths.push(report.to_str().unwrap().to_string());
    }
    let merged = spp()
        .args(["batch", "--merge", &report_paths.join(","), "--cells"])
        .output()
        .unwrap();
    assert!(
        merged.status.success(),
        "{}",
        String::from_utf8_lossy(&merged.stderr)
    );
    assert_eq!(
        String::from_utf8(single.stdout).unwrap(),
        String::from_utf8(merged.stdout).unwrap(),
        "sharded+merged stdout differs from single-process stdout"
    );

    // Resume: an in-process multi-shard run with a cache directory,
    // twice; the second run serves every cell from the cache ("resumed"
    // shards, zero misses) and prints the same table.
    let cache_dir = dir.join("cache");
    let run_cached = || {
        spp()
            .args([
                "batch",
                "--input-dir",
                suite_dir.to_str().unwrap(),
                "--algos",
                algos,
                "--shards",
                "4",
                "--cache-dir",
                cache_dir.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    let first = run_cached();
    assert!(first.status.success());
    let second = run_cached();
    assert!(second.status.success());
    assert_eq!(first.stdout, second.stdout);
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr.contains("resumed") && !stderr.contains("computed"),
        "second cached run should resume all shards:\n{stderr}"
    );
    assert!(
        stderr.contains(" 0 misses"),
        "warm run must report zero cache misses:\n{stderr}"
    );
    // The warm table also matches the cache-less single-process run.
    let uncached = spp()
        .args([
            "batch",
            "--input-dir",
            suite_dir.to_str().unwrap(),
            "--algos",
            algos,
        ])
        .output()
        .unwrap();
    assert_eq!(uncached.stdout, second.stdout);
}

/// The cache subcommands end to end: a cached batch populates the
/// directory, `stats` describes it, `verify` re-solves a sample cleanly,
/// corruption is caught by `verify`'s full sweep, and `gc` removes the
/// damage.
#[test]
fn cache_subcommands_stats_verify_gc() {
    let dir = std::env::temp_dir().join("spp_cli_test_cache_cmds");
    let _ = std::fs::remove_dir_all(&dir);
    let suite_dir = dir.join("instances");
    assert!(spp()
        .args([
            "suite",
            "--out-dir",
            suite_dir.to_str().unwrap(),
            "--count",
            "8",
            "-n",
            "10",
            "--seed",
            "5",
        ])
        .output()
        .unwrap()
        .status
        .success());
    let cache_dir = dir.join("cache");
    let batch = spp()
        .args([
            "batch",
            "--input-dir",
            suite_dir.to_str().unwrap(),
            "--algos",
            "nfdh,greedy",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        batch.status.success(),
        "{}",
        String::from_utf8_lossy(&batch.stderr)
    );

    // stats: 8 instances x 2 solvers = 16 entries, none corrupt.
    let stats = spp()
        .args(["cache", "stats", "--cache-dir", cache_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(stats.status.success());
    let text = String::from_utf8(stats.stdout).unwrap();
    assert!(text.contains("entries      16"), "{text}");
    assert!(text.contains("corrupt      0"), "{text}");
    assert!(text.contains("solver       greedy 8"), "{text}");
    assert!(text.contains("solver       nfdh 8"), "{text}");

    // verify: a clean cache re-solves with zero mismatches.
    let verify = spp()
        .args([
            "cache",
            "verify",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
            "--input-dir",
            suite_dir.to_str().unwrap(),
            "--algos",
            "nfdh,greedy",
            "--sample",
            "0",
        ])
        .output()
        .unwrap();
    assert!(
        verify.status.success(),
        "{}",
        String::from_utf8_lossy(&verify.stderr)
    );
    let text = String::from_utf8(verify.stdout).unwrap();
    assert!(text.contains("16 of 16"), "{text}");
    assert!(text.contains("0 mismatches"), "{text}");

    // Tamper with one entry *plausibly* (still parses, wrong makespan):
    // verify catches it; a garbage file is invisible to verify (it can
    // never be served) but gc removes it.
    let entry_path = std::fs::read_dir(&cache_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .unwrap();
    let tampered = std::fs::read_to_string(&entry_path)
        .unwrap()
        .replace("\"makespan\": ", "\"makespan\": 9");
    std::fs::write(&entry_path, tampered).unwrap();
    std::fs::write(cache_dir.join("zz-garbage.json"), "not json").unwrap();

    let verify = spp()
        .args([
            "cache",
            "verify",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
            "--input-dir",
            suite_dir.to_str().unwrap(),
            "--algos",
            "nfdh,greedy",
            "--sample",
            "0",
        ])
        .output()
        .unwrap();
    assert!(!verify.status.success(), "tampered entry must fail verify");
    let stderr = String::from_utf8_lossy(&verify.stderr);
    assert!(stderr.contains("MISMATCH"), "{stderr}");

    let gc = spp()
        .args(["cache", "gc", "--cache-dir", cache_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(gc.status.success());
    let text = String::from_utf8(gc.stdout).unwrap();
    assert!(text.contains("removed 1"), "{text}");
}

/// The removed `--manifest` flag errors loudly instead of being silently
/// ignored — an old script would otherwise believe its runs resumable.
#[test]
fn removed_manifest_flag_is_rejected_with_pointer_to_cache_dir() {
    let out = spp()
        .args([
            "batch",
            "--input-dir",
            "/nonexistent",
            "--shards",
            "2",
            "--manifest",
            "/tmp/m",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--manifest") && stderr.contains("--cache-dir"),
        "{stderr}"
    );
}

/// `--cache-readonly` consults but never grows the cache.
#[test]
fn cache_readonly_serves_without_writing() {
    let dir = std::env::temp_dir().join("spp_cli_test_cache_ro");
    let _ = std::fs::remove_dir_all(&dir);
    let suite_dir = dir.join("instances");
    assert!(spp()
        .args([
            "suite",
            "--out-dir",
            suite_dir.to_str().unwrap(),
            "--count",
            "4",
            "-n",
            "8",
        ])
        .output()
        .unwrap()
        .status
        .success());
    let cache_dir = dir.join("cache");
    let run = |extra: &[&str]| {
        let mut args = vec![
            "batch",
            "--input-dir",
            suite_dir.to_str().unwrap(),
            "--algos",
            "nfdh",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        spp().args(&args).output().unwrap()
    };
    // Read-only against a *missing* directory is refused loudly — a
    // typo'd path must not silently run uncached at full solve cost.
    let missing = run(&["--cache-readonly"]);
    assert!(!missing.status.success());
    assert!(
        String::from_utf8_lossy(&missing.stderr).contains("does not exist"),
        "{}",
        String::from_utf8_lossy(&missing.stderr)
    );

    // Read-only against an existing empty cache: all misses, nothing
    // written.
    std::fs::create_dir_all(&cache_dir).unwrap();
    let cold = run(&["--cache-readonly"]);
    assert!(cold.status.success());
    let entries = || {
        std::fs::read_dir(&cache_dir)
            .map(|d| d.count())
            .unwrap_or(0)
    };
    assert_eq!(entries(), 0, "read-only run must not populate the cache");

    // A writable run populates; a read-only rerun is all hits and leaves
    // the directory untouched.
    assert!(run(&[]).status.success());
    let populated = entries();
    assert_eq!(populated, 4);
    let warm = run(&["--cache-readonly"]);
    assert!(warm.status.success());
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(stderr.contains(" 0 misses"), "{stderr}");
    assert_eq!(entries(), populated);
}

#[test]
fn merge_rejects_incomplete_shard_sets() {
    let dir = std::env::temp_dir().join("spp_cli_test_badmerge");
    let _ = std::fs::remove_dir_all(&dir);
    let suite_dir = dir.join("instances");
    assert!(spp()
        .args([
            "suite",
            "--out-dir",
            suite_dir.to_str().unwrap(),
            "--count",
            "4",
            "-n",
            "8",
        ])
        .output()
        .unwrap()
        .status
        .success());
    let report = dir.join("only-shard0.json");
    assert!(spp()
        .args([
            "batch",
            "--input-dir",
            suite_dir.to_str().unwrap(),
            "--algos",
            "nfdh",
            "--shards",
            "2",
            "--shard-index",
            "0",
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap()
        .status
        .success());
    let out = spp()
        .args(["batch", "--merge", report.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2 shards"), "{stderr}");
}

#[test]
fn algos_lists_advertised_bounds() {
    let out = spp().args(["algos"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("advertised bound"), "{stdout}");
    assert!(stdout.contains("2·AREA + h_max"), "{stdout}");
    assert!(stdout.contains("(1+ε)·OPT_f"), "{stdout}");
}

#[test]
fn malformed_instance_fails_cleanly() {
    let tmp = std::env::temp_dir().join("spp_cli_test_garbage.spp");
    std::fs::write(&tmp, "not an instance").unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}
