//! End-to-end tests of the `spp` command-line tool.

use std::process::{Command, Stdio};

fn spp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spp"))
}

#[test]
fn gen_pack_roundtrip() {
    let gen = spp()
        .args(["gen", "--family", "layered", "-n", "25", "--seed", "9"])
        .output()
        .expect("spawn spp gen");
    assert!(gen.status.success());
    let text = String::from_utf8(gen.stdout).unwrap();
    assert!(text.starts_with("spp v1"));
    // parse back through the library and check it is the same instance
    let prec = strip_packing::gen::textio::from_text(&text).unwrap();
    assert_eq!(prec.len(), 25);

    // pipe into `spp pack -`
    let mut child = spp()
        .args(["pack", "-", "--algo", "dc-nfdh"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn spp pack");
    use std::io::Write as _;
    child
        .stdin
        .take()
        .unwrap()
        .write_all(text.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    // one `place` line per item, parseable back into a valid placement
    let mut pl = strip_packing::core::Placement::zeroed(25);
    let mut count = 0;
    for line in stdout.lines() {
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("place"));
        let id: usize = parts.next().unwrap().parse().unwrap();
        let x: f64 = parts.next().unwrap().parse().unwrap();
        let y: f64 = parts.next().unwrap().parse().unwrap();
        pl.set(id, x, y);
        count += 1;
    }
    assert_eq!(count, 25);
    prec.assert_valid(&pl);
}

#[test]
fn bounds_subcommand_reports_all_bounds() {
    let gen = spp()
        .args(["gen", "--family", "chains", "-n", "10", "--seed", "1"])
        .output()
        .unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_inst.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args(["bounds", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for key in ["AREA", "F (crit path)", "combined LB", "T2.3 bound"] {
        assert!(text.contains(key), "missing {key} in:\n{text}");
    }
}

#[test]
fn svg_render_is_emitted() {
    let gen = spp()
        .args(["gen", "-n", "8", "--seed", "2"])
        .output()
        .unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_svg.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args([
            "pack",
            tmp.to_str().unwrap(),
            "--algo",
            "greedy",
            "--render",
            "svg",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let svg = String::from_utf8(out.stdout).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("</svg>"));
}

#[test]
fn unknown_algorithm_lists_the_registry() {
    let gen = spp().args(["gen", "-n", "4"]).output().unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_bad.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap(), "--algo", "quantum"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown solver"), "{stderr}");
    // The message must come from the live registry, not a hard-coded list.
    for name in strip_packing::engine::Registry::builtin().names() {
        assert!(
            stderr.contains(name),
            "registry entry {name} missing:\n{stderr}"
        );
    }
}

#[test]
fn unknown_family_lists_known_families() {
    let out = spp()
        .args(["gen", "--family", "moebius", "-n", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown family"), "{stderr}");
    for f in strip_packing::gen::rects::DagFamily::ALL {
        assert!(
            stderr.contains(f.name()),
            "family {} missing:\n{stderr}",
            f.name()
        );
    }
}

#[test]
fn algos_subcommand_lists_every_registry_entry() {
    let out = spp().args(["algos"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in strip_packing::engine::Registry::builtin().names() {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn batch_runs_hundreds_of_cells_deterministically() {
    let run = || {
        spp()
            .args([
                "batch",
                "--families",
                "layered,random",
                "--count",
                "50",
                "-n",
                "12",
                "--seed",
                "3",
                "--algos",
                "dc-nfdh,greedy,layered",
            ])
            .output()
            .unwrap()
    };
    let out = run();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8(out.stdout).unwrap();
    for algo in ["dc-nfdh", "greedy", "layered"] {
        assert!(table.contains(algo), "missing {algo} in:\n{table}");
    }
    // 2 families x 50 instances x 3 solvers = 300 cells.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("100 jobs x 3 solvers = 300 cells"),
        "{stderr}"
    );
    // Deterministic: stdout (counts/ratios table) is identical across runs.
    let again = run();
    assert_eq!(table, String::from_utf8(again.stdout).unwrap());
}

#[test]
fn batch_rejects_unknown_solver_with_listing() {
    let out = spp()
        .args(["batch", "--count", "2", "--algos", "nfdh,warp-drive"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown solver") && stderr.contains("warp-drive"));
}

#[test]
fn malformed_instance_fails_cleanly() {
    let tmp = std::env::temp_dir().join("spp_cli_test_garbage.spp");
    std::fs::write(&tmp, "not an instance").unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}
