//! End-to-end tests of the `spp` command-line tool.

use std::process::{Command, Stdio};

fn spp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spp"))
}

#[test]
fn gen_pack_roundtrip() {
    let gen = spp()
        .args(["gen", "--family", "layered", "-n", "25", "--seed", "9"])
        .output()
        .expect("spawn spp gen");
    assert!(gen.status.success());
    let text = String::from_utf8(gen.stdout).unwrap();
    assert!(text.starts_with("spp v1"));
    // parse back through the library and check it is the same instance
    let prec = strip_packing::gen::textio::from_text(&text).unwrap();
    assert_eq!(prec.len(), 25);

    // pipe into `spp pack -`
    let mut child = spp()
        .args(["pack", "-", "--algo", "dc-nfdh"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn spp pack");
    use std::io::Write as _;
    child
        .stdin
        .take()
        .unwrap()
        .write_all(text.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    // one `place` line per item, parseable back into a valid placement
    let mut pl = strip_packing::core::Placement::zeroed(25);
    let mut count = 0;
    for line in stdout.lines() {
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("place"));
        let id: usize = parts.next().unwrap().parse().unwrap();
        let x: f64 = parts.next().unwrap().parse().unwrap();
        let y: f64 = parts.next().unwrap().parse().unwrap();
        pl.set(id, x, y);
        count += 1;
    }
    assert_eq!(count, 25);
    prec.assert_valid(&pl);
}

#[test]
fn bounds_subcommand_reports_all_bounds() {
    let gen = spp()
        .args(["gen", "--family", "chains", "-n", "10", "--seed", "1"])
        .output()
        .unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_inst.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args(["bounds", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for key in ["AREA", "F (crit path)", "combined LB", "T2.3 bound"] {
        assert!(text.contains(key), "missing {key} in:\n{text}");
    }
}

#[test]
fn svg_render_is_emitted() {
    let gen = spp()
        .args(["gen", "-n", "8", "--seed", "2"])
        .output()
        .unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_svg.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args([
            "pack",
            tmp.to_str().unwrap(),
            "--algo",
            "greedy",
            "--render",
            "svg",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let svg = String::from_utf8(out.stdout).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("</svg>"));
}

#[test]
fn unknown_algorithm_lists_the_registry() {
    let gen = spp().args(["gen", "-n", "4"]).output().unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_bad.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap(), "--algo", "quantum"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown solver"), "{stderr}");
    // The message must come from the live registry, not a hard-coded list.
    for name in strip_packing::engine::Registry::builtin().names() {
        assert!(
            stderr.contains(name),
            "registry entry {name} missing:\n{stderr}"
        );
    }
}

#[test]
fn unknown_family_lists_known_families() {
    let out = spp()
        .args(["gen", "--family", "moebius", "-n", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown family"), "{stderr}");
    for f in strip_packing::gen::rects::DagFamily::ALL {
        assert!(
            stderr.contains(f.name()),
            "family {} missing:\n{stderr}",
            f.name()
        );
    }
}

#[test]
fn algos_subcommand_lists_every_registry_entry() {
    let out = spp().args(["algos"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in strip_packing::engine::Registry::builtin().names() {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn batch_runs_hundreds_of_cells_deterministically() {
    let run = || {
        spp()
            .args([
                "batch",
                "--families",
                "layered,random",
                "--count",
                "50",
                "-n",
                "12",
                "--seed",
                "3",
                "--algos",
                "dc-nfdh,greedy,layered",
            ])
            .output()
            .unwrap()
    };
    let out = run();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8(out.stdout).unwrap();
    for algo in ["dc-nfdh", "greedy", "layered"] {
        assert!(table.contains(algo), "missing {algo} in:\n{table}");
    }
    // 2 families x 50 instances x 3 solvers = 300 cells.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("100 jobs x 3 solvers = 300 cells"),
        "{stderr}"
    );
    // Deterministic: stdout (counts/ratios table) is identical across runs.
    let again = run();
    assert_eq!(table, String::from_utf8(again.stdout).unwrap());
}

#[test]
fn batch_rejects_unknown_solver_with_listing() {
    let out = spp()
        .args(["batch", "--count", "2", "--algos", "nfdh,warp-drive"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown solver") && stderr.contains("warp-drive"));
}

#[test]
fn gen_emits_json_that_pack_accepts() {
    let gen = spp()
        .args([
            "gen", "--family", "layered", "-n", "10", "--seed", "4", "--format", "json",
        ])
        .output()
        .unwrap();
    assert!(gen.status.success());
    let text = String::from_utf8(gen.stdout).unwrap();
    assert!(text.starts_with('{'), "{text}");
    let prec = strip_packing::gen::fileio::from_json(&text).unwrap();
    assert_eq!(prec.len(), 10);

    // and `spp pack` reads it from a .json path
    let tmp = std::env::temp_dir().join("spp_cli_test_inst.json");
    std::fs::write(&tmp, &text).unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap(), "--algo", "greedy"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn json_parse_errors_name_field_and_line() {
    let tmp = std::env::temp_dir().join("spp_cli_test_badfield.json");
    std::fs::write(
        &tmp,
        "{\"format\": \"spp-instance\", \"version\": 1,\n \"items\": [\n {\"id\": 0, \"w\": 2.5, \"h\": 1, \"release\": 0}\n ], \"edges\": []}",
    )
    .unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("items[0].w") && stderr.contains("line 3"),
        "{stderr}"
    );
}

/// The acceptance-criterion pipeline end to end: a suite of instance
/// files run as 4 separate shard *processes*, merged, must be
/// byte-identical on stdout to the single-process run — and resumable
/// via a manifest directory.
#[test]
fn sharded_batch_merge_is_byte_identical_to_single_process() {
    let dir = std::env::temp_dir().join("spp_cli_test_shards");
    let _ = std::fs::remove_dir_all(&dir);
    let suite_dir = dir.join("instances");
    let gen = spp()
        .args([
            "suite",
            "--out-dir",
            suite_dir.to_str().unwrap(),
            "--count",
            "20",
            "-n",
            "14",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let algos = "nfdh,ffdh,greedy,dc-nfdh,combined-greedy";
    let single = spp()
        .args([
            "batch",
            "--input-dir",
            suite_dir.to_str().unwrap(),
            "--algos",
            algos,
            "--cells",
        ])
        .output()
        .unwrap();
    assert!(
        single.status.success(),
        "{}",
        String::from_utf8_lossy(&single.stderr)
    );

    // Four shard processes, each writing a portable report file.
    let mut report_paths = Vec::new();
    for i in 0..4 {
        let report = dir.join(format!("shard{i}.json"));
        let out = spp()
            .args([
                "batch",
                "--input-dir",
                suite_dir.to_str().unwrap(),
                "--algos",
                algos,
                "--shards",
                "4",
                "--shard-index",
                &i.to_string(),
                "--out",
                report.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "shard {i}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        report_paths.push(report.to_str().unwrap().to_string());
    }
    let merged = spp()
        .args(["batch", "--merge", &report_paths.join(","), "--cells"])
        .output()
        .unwrap();
    assert!(
        merged.status.success(),
        "{}",
        String::from_utf8_lossy(&merged.stderr)
    );
    assert_eq!(
        String::from_utf8(single.stdout).unwrap(),
        String::from_utf8(merged.stdout).unwrap(),
        "sharded+merged stdout differs from single-process stdout"
    );

    // Resume: an in-process multi-shard run with a manifest, twice; the
    // second run resumes every shard and prints the same table.
    let manifest = dir.join("manifest");
    let run_manifest = || {
        spp()
            .args([
                "batch",
                "--input-dir",
                suite_dir.to_str().unwrap(),
                "--algos",
                algos,
                "--shards",
                "4",
                "--manifest",
                manifest.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    let first = run_manifest();
    assert!(first.status.success());
    let second = run_manifest();
    assert!(second.status.success());
    assert_eq!(first.stdout, second.stdout);
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr.contains("resumed") && !stderr.contains("computed"),
        "second manifest run should resume all shards:\n{stderr}"
    );
}

#[test]
fn merge_rejects_incomplete_shard_sets() {
    let dir = std::env::temp_dir().join("spp_cli_test_badmerge");
    let _ = std::fs::remove_dir_all(&dir);
    let suite_dir = dir.join("instances");
    assert!(spp()
        .args([
            "suite",
            "--out-dir",
            suite_dir.to_str().unwrap(),
            "--count",
            "4",
            "-n",
            "8",
        ])
        .output()
        .unwrap()
        .status
        .success());
    let report = dir.join("only-shard0.json");
    assert!(spp()
        .args([
            "batch",
            "--input-dir",
            suite_dir.to_str().unwrap(),
            "--algos",
            "nfdh",
            "--shards",
            "2",
            "--shard-index",
            "0",
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap()
        .status
        .success());
    let out = spp()
        .args(["batch", "--merge", report.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2 shards"), "{stderr}");
}

#[test]
fn algos_lists_advertised_bounds() {
    let out = spp().args(["algos"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("advertised bound"), "{stdout}");
    assert!(stdout.contains("2·AREA + h_max"), "{stdout}");
    assert!(stdout.contains("(1+ε)·OPT_f"), "{stdout}");
}

#[test]
fn malformed_instance_fails_cleanly() {
    let tmp = std::env::temp_dir().join("spp_cli_test_garbage.spp");
    std::fs::write(&tmp, "not an instance").unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}
