//! End-to-end tests of the `spp` command-line tool.

use std::process::{Command, Stdio};

fn spp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spp"))
}

#[test]
fn gen_pack_roundtrip() {
    let gen = spp()
        .args(["gen", "--family", "layered", "-n", "25", "--seed", "9"])
        .output()
        .expect("spawn spp gen");
    assert!(gen.status.success());
    let text = String::from_utf8(gen.stdout).unwrap();
    assert!(text.starts_with("spp v1"));
    // parse back through the library and check it is the same instance
    let prec = strip_packing::gen::textio::from_text(&text).unwrap();
    assert_eq!(prec.len(), 25);

    // pipe into `spp pack -`
    let mut child = spp()
        .args(["pack", "-", "--algo", "dc-nfdh"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn spp pack");
    use std::io::Write as _;
    child
        .stdin
        .take()
        .unwrap()
        .write_all(text.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // one `place` line per item, parseable back into a valid placement
    let mut pl = strip_packing::core::Placement::zeroed(25);
    let mut count = 0;
    for line in stdout.lines() {
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("place"));
        let id: usize = parts.next().unwrap().parse().unwrap();
        let x: f64 = parts.next().unwrap().parse().unwrap();
        let y: f64 = parts.next().unwrap().parse().unwrap();
        pl.set(id, x, y);
        count += 1;
    }
    assert_eq!(count, 25);
    prec.assert_valid(&pl);
}

#[test]
fn bounds_subcommand_reports_all_bounds() {
    let gen = spp()
        .args(["gen", "--family", "chains", "-n", "10", "--seed", "1"])
        .output()
        .unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_inst.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args(["bounds", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for key in ["AREA", "F (crit path)", "combined LB", "T2.3 bound"] {
        assert!(text.contains(key), "missing {key} in:\n{text}");
    }
}

#[test]
fn svg_render_is_emitted() {
    let gen = spp()
        .args(["gen", "-n", "8", "--seed", "2"])
        .output()
        .unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_svg.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap(), "--algo", "greedy", "--render", "svg"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let svg = String::from_utf8(out.stdout).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("</svg>"));
}

#[test]
fn unknown_algorithm_fails_cleanly() {
    let gen = spp().args(["gen", "-n", "4"]).output().unwrap();
    let tmp = std::env::temp_dir().join("spp_cli_test_bad.spp");
    std::fs::write(&tmp, &gen.stdout).unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap(), "--algo", "quantum"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}

#[test]
fn malformed_instance_fails_cleanly() {
    let tmp = std::env::temp_dir().join("spp_cli_test_garbage.spp");
    std::fs::write(&tmp, "not an instance").unwrap();
    let out = spp()
        .args(["pack", tmp.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}
