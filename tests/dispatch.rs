//! Multi-process round trip of the pull-based dispatcher — the
//! acceptance criterion of the distributed-execution work, asserted as a
//! test rather than only a CI smoke job:
//!
//! * `spp dispatch` in one process plus a fleet of `spp work` pullers in
//!   others produces a merged report **byte-identical** to a
//!   single-process `spp batch` over the same inputs;
//! * a worker killed mid-run (the `--abandon-after` chaos hook: it exits
//!   without completing a lease it holds) loses nothing — the lease is
//!   requeued at its deadline, picked up by a surviving worker, and no
//!   cell is lost or double-counted;
//! * the requeue is observable: `/work/status` reports it.

use std::io::{BufRead as _, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn spp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spp"))
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spp_dispatch_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const ALGOS: &str = "nfdh,ffdh,greedy";

/// A real `spp dispatch` child process. Like `spp serve`, it prints
/// `listening on http://host:port` as its first stdout line (port 0 =
/// kernel-chosen) — the only startup synchronization needed.
struct DispatcherProc {
    child: Child,
    url: String,
}

impl DispatcherProc {
    fn start(suite: &Path, lease_timeout_secs: &str) -> DispatcherProc {
        let mut child = spp()
            .args([
                "dispatch",
                "--input-dir",
                suite.to_str().unwrap(),
                "--algos",
                ALGOS,
                "--addr",
                "127.0.0.1:0",
                "--lease-files",
                "1",
                "--lease-timeout",
                lease_timeout_secs,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn spp dispatch");
        let mut line = String::new();
        BufReader::new(child.stdout.take().expect("dispatcher stdout"))
            .read_line(&mut line)
            .expect("read dispatcher banner");
        let url = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .to_string();
        DispatcherProc { child, url }
    }

    fn authority(&self) -> &str {
        self.url.strip_prefix("http://").unwrap()
    }
}

impl Drop for DispatcherProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn run_worker(url: &str, extra: &[&str]) -> std::process::Output {
    spp()
        .args(["work", "--dispatcher-url", url, "--poll-ms", "50"])
        .args(extra)
        .output()
        .expect("spawn spp work")
}

#[test]
fn dispatched_fleet_with_a_killed_worker_matches_single_process_byte_for_byte() {
    let suite = tmp("suite");
    strip_packing::gen::suite::write_suite(&suite, 29, 10, 10).unwrap();

    // Reference: single-process spp batch over the same inputs.
    let single = spp()
        .args([
            "batch",
            "--input-dir",
            suite.to_str().unwrap(),
            "--algos",
            ALGOS,
            "--cells",
        ])
        .output()
        .unwrap();
    assert!(single.status.success());
    let single_stdout = String::from_utf8(single.stdout).unwrap();

    // 1-second lease timeout so the killed worker's chunk requeues fast.
    let dispatcher = DispatcherProc::start(&suite, "1");

    // Worker A dies mid-run: it completes its first lease, then exits
    // without completing its second — exactly what kill -9 between
    // lease and completion looks like to the dispatcher, made
    // deterministic by the chaos hook.
    let doomed = run_worker(&dispatcher.url, &["--abandon-after", "2"]);
    assert_eq!(doomed.status.code(), Some(3), "chaos hook exit code");

    // Two surviving workers drain the queue, including the requeued
    // chunk once its lease expires.
    let survivors: Vec<std::thread::JoinHandle<std::process::Output>> = (0..2)
        .map(|_| {
            let url = dispatcher.url.clone();
            std::thread::spawn(move || run_worker(&url, &[]))
        })
        .collect();
    for s in survivors {
        let out = s.join().unwrap();
        assert!(
            out.status.success(),
            "worker failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // The thin batch client collects the merged report: byte-identical
    // stdout — no cell lost to the kill, none double-counted.
    let awaited = spp()
        .args(["batch", "--dispatcher-url", &dispatcher.url, "--cells"])
        .output()
        .unwrap();
    assert!(
        awaited.status.success(),
        "{}",
        String::from_utf8_lossy(&awaited.stderr)
    );
    assert_eq!(
        String::from_utf8(awaited.stdout).unwrap(),
        single_stdout,
        "dispatched run diverged from single-process spp batch"
    );

    // The kill left its trace: at least one lease was requeued, and the
    // queue reports itself done.
    let status =
        strip_packing::serve::http::roundtrip(dispatcher.authority(), "GET", "/work/status", "")
            .unwrap();
    assert_eq!(status.status, 200);
    assert!(status.body.contains("\"done\": true"), "{}", status.body);
    assert!(
        !status.body.contains("\"requeued\": 0"),
        "expected a nonzero requeue counter: {}",
        status.body
    );

    // /stats exposes the same story without logs: uptime, per-endpoint
    // counters (lease/complete included), queue progress.
    let stats =
        strip_packing::serve::http::roundtrip(dispatcher.authority(), "GET", "/stats", "").unwrap();
    assert_eq!(stats.status, 200);
    for needle in ["\"uptime_secs\":", "\"work_lease\":", "\"work_complete\":"] {
        assert!(
            stats.body.contains(needle),
            "missing {needle}: {}",
            stats.body
        );
    }

    drop(dispatcher);
    let _ = std::fs::remove_dir_all(&suite);
}

#[test]
fn dispatch_rejects_conflicting_batch_flags() {
    // --dispatcher-url is a thin client: flags the dispatcher owns are
    // refused instead of silently ignored.
    let out = spp()
        .args([
            "batch",
            "--dispatcher-url",
            "http://127.0.0.1:1",
            "--input-dir",
            "/tmp/x",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--input-dir"), "{stderr}");

    // A syntactically bad dispatcher URL is refused up front.
    let out = spp()
        .args(["work", "--dispatcher-url", "ftp://127.0.0.1:1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
