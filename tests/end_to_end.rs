//! Cross-crate integration: workload generation → algorithms →
//! validation → device scheduling, exercised through the facade crate
//! exactly as a downstream user would.

use rand::{rngs::StdRng, Rng, SeedableRng};
use strip_packing::core::validate::assert_valid;
use strip_packing::dag::PrecInstance;
use strip_packing::pack::Packer;

#[test]
fn generated_dag_workloads_pack_with_every_algorithm() {
    let mut rng = StdRng::seed_from_u64(1);
    for family in strip_packing::gen::rects::DagFamily::ALL {
        let inst = strip_packing::gen::rects::uniform(&mut rng, 60, (0.05, 0.9), (0.05, 1.0));
        let dag = family.build(&mut rng, 60);
        let prec = PrecInstance::new(inst, dag);
        for placement in [
            strip_packing::precedence::dc(&prec, &Packer::Nfdh),
            strip_packing::precedence::greedy_skyline(&prec),
            strip_packing::precedence::layered_pack(&prec, &Packer::Ffdh),
        ] {
            prec.assert_valid(&placement);
            assert!(placement.height(&prec.inst) + 1e-9 >= prec.lower_bound());
        }
    }
}

#[test]
fn text_roundtrip_preserves_algorithm_behaviour() {
    let mut rng = StdRng::seed_from_u64(2);
    let inst = strip_packing::gen::rects::uniform(&mut rng, 40, (0.05, 0.9), (0.05, 1.0));
    let prec = strip_packing::gen::rects::with_layered_dag(&mut rng, inst, 6, 0.2);
    let text = strip_packing::gen::textio::to_text(&prec);
    let back = strip_packing::gen::textio::from_text(&text).expect("roundtrip parses");
    let h1 = strip_packing::precedence::dc(&prec, &Packer::Nfdh).height(&prec.inst);
    let h2 = strip_packing::precedence::dc(&back, &Packer::Nfdh).height(&back.inst);
    assert_eq!(h1, h2, "identical instances must pack identically");
}

#[test]
fn fpga_pipeline_end_to_end() {
    let device = strip_packing::fpga::Device::new(12);
    let mut rng = StdRng::seed_from_u64(3);
    let graph = strip_packing::fpga::pipelines::tiled_pipeline(&mut rng, device, 5, 4);
    let prec = strip_packing::fpga::to_prec_instance(&graph);
    let pl = strip_packing::precedence::dc(&prec, &Packer::Nfdh);
    let sched = strip_packing::fpga::schedule_from_placement(&graph, &pl).expect("column aligned");
    sched.validate(&graph).expect("valid schedule");
    assert!(sched.makespan(&graph) + 1e-9 >= graph.makespan_lower_bound());
    // Gantt renders without panicking and covers the makespan
    let gantt = strip_packing::fpga::gantt::render(&graph, &sched, 0.5);
    assert!(gantt.contains("K=12"));
}

#[test]
fn aptas_end_to_end_on_online_queue() {
    let mut rng = StdRng::seed_from_u64(4);
    let params = strip_packing::gen::release::ReleaseParams {
        k: 3,
        column_widths: true,
        h: (0.1, 1.0),
    };
    let inst = strip_packing::gen::release::poisson_arrivals(&mut rng, 40, 0.2, params);
    let res = strip_packing::release::aptas(
        &inst,
        strip_packing::release::AptasConfig { epsilon: 1.0, k: 3 },
    );
    assert_eq!(res.leftovers, 0);
    assert_valid(&inst, &res.placement);
    // baselines on the same instance
    let b = strip_packing::release::baselines::skyline_release(&inst);
    assert_valid(&inst, &b);
    // both dominate the trivial lower bound
    let lb = strip_packing::release::baselines::release_lower_bound(&inst);
    assert!(res.height + 1e-9 >= lb);
    assert!(b.height(&inst) + 1e-9 >= lb);
}

#[test]
fn uniform_height_pipeline_bins_shelves_exact_agree() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..5 {
        let n = rng.gen_range(4..14);
        let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..0.9)).collect();
        let dag = strip_packing::dag::gen::random_order(&mut rng, n, 0.25);
        let dims: Vec<(f64, f64)> = sizes.iter().map(|&w| (w, 1.0)).collect();
        let inst = strip_packing::core::Instance::from_dims(&dims).unwrap();
        let prec = PrecInstance::new(inst, dag.clone());

        // shelf view and bin view agree
        let shelf = strip_packing::precedence::shelf_next_fit(&prec);
        let bins = strip_packing::precedence::binpack::next_fit_prec(&sizes, &dag);
        assert_eq!(shelf.shelves.len(), bins.len());

        // both within 3x of the exact optimum (Theorem 2.6)
        let opt = strip_packing::exact::exact_bins(&sizes, &dag);
        assert!(shelf.shelves.len() <= 3 * opt);

        // converting the shelf placement through the §2.2 reduction is a
        // no-op (already a shelf solution)
        let reduced =
            strip_packing::precedence::reduction::to_shelf_solution(&prec, &shelf.placement);
        assert_eq!(reduced, shelf.placement);
    }
}

#[test]
fn exact_solver_agrees_with_dc_lower_bounds() {
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..6 {
        let n = rng.gen_range(2..6);
        let dims: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.2..0.9), rng.gen_range(0.2..1.0)))
            .collect();
        let inst = strip_packing::core::Instance::from_dims(&dims).unwrap();
        let dag = strip_packing::dag::gen::random_order(&mut rng, n, 0.3);
        let prec = PrecInstance::new(inst, dag);
        let exact =
            strip_packing::exact::exact_strip(&prec, strip_packing::exact::ExactConfig::default());
        assert!(exact.proven_optimal);
        // sandwich: LB ≤ OPT ≤ DC ≤ Theorem 2.3 bound
        let dc_h = strip_packing::precedence::dc(&prec, &Packer::Nfdh).height(&prec.inst);
        assert!(prec.lower_bound() <= exact.height + 1e-9);
        assert!(exact.height <= dc_h + 1e-9);
        assert!(dc_h <= strip_packing::precedence::dc_bound(&prec) + 1e-9);
    }
}

#[test]
fn aptas_output_is_a_valid_fpga_schedule() {
    // APTAS placements are column-aligned (x positions are sums of class
    // widths, and class widths are column multiples), so they round-trip
    // onto the device model with release times intact.
    use strip_packing::fpga::{Device, Task, TaskGraph};
    let mut rng = StdRng::seed_from_u64(7);
    let k = 4usize;
    let p = strip_packing::gen::release::ReleaseParams {
        k,
        column_widths: true,
        h: (0.1, 1.0),
    };
    let inst = strip_packing::gen::release::poisson_arrivals(&mut rng, 30, 0.25, p);
    let res = strip_packing::release::aptas(
        &inst,
        strip_packing::release::AptasConfig { epsilon: 1.0, k },
    );
    assert_valid(&inst, &res.placement);

    let tasks: Vec<Task> = inst
        .items()
        .iter()
        .map(|it| Task::with_release(it.id, (it.w * k as f64).round() as usize, it.h, it.release))
        .collect();
    let graph = TaskGraph::independent(Device::new(k), tasks);
    let sched = strip_packing::fpga::schedule_from_placement(&graph, &res.placement)
        .expect("APTAS placements are column-aligned");
    sched
        .validate(&graph)
        .expect("valid device schedule with releases");
}
