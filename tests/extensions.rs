//! Integration tests for the extension features: online scheduling,
//! reconfiguration overhead, rotations, rendering, LP certificates, and
//! the second A-bounded subroutine inside `DC`.

use rand::{rngs::StdRng, SeedableRng};
use strip_packing::dag::PrecInstance;
use strip_packing::pack::Packer;

#[test]
fn dc_with_wsnf_keeps_the_theorem_bound() {
    // WSNF carries the same proven A-bound as NFDH, so Theorem 2.3 holds
    // verbatim with it as subroutine A.
    let mut rng = StdRng::seed_from_u64(200);
    for family in strip_packing::gen::rects::DagFamily::ALL {
        let inst = strip_packing::gen::rects::tall_wide_mix(&mut rng, 80, 0.4);
        let dag = family.build(&mut rng, 80);
        let prec = PrecInstance::new(inst, dag);
        let pl = strip_packing::precedence::dc(&prec, &Packer::Wsnf);
        prec.assert_valid(&pl);
        assert!(
            pl.height(&prec.inst) <= strip_packing::precedence::dc_bound(&prec) + 1e-9,
            "family {}",
            family.name()
        );
    }
}

#[test]
fn online_offline_sandwich() {
    // OPT_f ≤ offline APTAS height and OPT_f ≤ online makespan; online
    // is never better than the best offline placement it could have made.
    let mut rng = StdRng::seed_from_u64(201);
    let p = strip_packing::gen::release::ReleaseParams {
        k: 3,
        column_widths: true,
        h: (0.1, 1.0),
    };
    let inst = strip_packing::gen::release::bursty(&mut rng, 24, 4, 1.0, 0.1, p);
    let opt_f = strip_packing::release::colgen::opt_f(&inst);
    for policy in [
        strip_packing::release::online::OnlinePolicy::Skyline,
        strip_packing::release::online::OnlinePolicy::Shelf { r: 0.5 },
    ] {
        let out = strip_packing::release::online::simulate(&inst, policy);
        strip_packing::core::validate::assert_valid(&inst, &out.placement);
        assert!(out.makespan + 1e-6 >= opt_f);
        assert!(out.max_wait >= 0.0);
    }
}

#[test]
fn overhead_schedules_via_every_algorithm() {
    let device = strip_packing::fpga::Device::new(8);
    let graph = strip_packing::fpga::pipelines::jpeg_pipeline(device, 3);
    let delta = 0.25;
    for packer in [Packer::Nfdh, Packer::Wsnf, Packer::Ffdh] {
        let sched = strip_packing::fpga::overhead::schedule_with_overhead(&graph, delta, |p| {
            strip_packing::precedence::dc(p, &packer)
        })
        .expect("column aligned");
        strip_packing::fpga::overhead::validate_with_overhead(&graph, &sched, delta)
            .expect("overhead-valid schedule");
        // overhead can only increase the makespan vs the overhead-free run
        let plain = {
            let prec = strip_packing::fpga::to_prec_instance(&graph);
            strip_packing::precedence::dc(&prec, &packer).height(&prec.inst)
        };
        assert!(sched.makespan(&graph) + 1e-9 >= plain - 1e-9);
    }
}

#[test]
fn rotation_preserves_area_and_validity_through_dc() {
    let mut rng = StdRng::seed_from_u64(202);
    let inst = strip_packing::gen::rects::uniform(&mut rng, 50, (0.05, 0.6), (0.3, 1.0));
    let rot = strip_packing::pack::pack_rotated(&inst, &Packer::Ffdh);
    strip_packing::core::validate::assert_valid(&rot.oriented, &rot.placement);
    assert!((rot.oriented.total_area() - inst.total_area()).abs() < 1e-9);
    // every rotated item is now at least as wide as tall
    for (it, &r) in rot.oriented.items().iter().zip(&rot.rotated) {
        if r {
            assert!(it.w + 1e-12 >= it.h);
        }
    }
}

#[test]
fn renderers_cover_whole_placements() {
    let mut rng = StdRng::seed_from_u64(203);
    let inst = strip_packing::gen::rects::uniform(&mut rng, 20, (0.1, 0.9), (0.1, 1.0));
    let pl = strip_packing::pack::ffdh(&inst);
    let ascii = strip_packing::core::render::ascii(&inst, &pl, 40, 0.25);
    // every item id below 10 that exists should appear somewhere
    for id in 0..10.min(inst.len()) {
        let glyph = char::from_digit(id as u32, 36).unwrap();
        assert!(ascii.contains(glyph), "id {id} missing from ascii render");
    }
    let svg = strip_packing::core::render::svg(&inst, &pl, 200.0);
    assert_eq!(svg.matches("<rect").count(), inst.len() + 1);
}

#[test]
fn lp_certificates_hold_for_aptas_runs() {
    // Re-solve an APTAS master LP manually and certify it end to end.
    let mut rng = StdRng::seed_from_u64(204);
    let p = strip_packing::gen::release::ReleaseParams {
        k: 2,
        column_widths: true,
        h: (0.1, 1.0),
    };
    let inst = strip_packing::gen::release::staircase(&mut rng, 20, 5.0, p);
    let rounded = strip_packing::release::rounding::round_releases(&inst, 0.5);
    let grouped = strip_packing::release::grouping::group_widths(&rounded.inst, 4);
    let data = strip_packing::release::lp_model::LpData::new(
        &grouped.inst,
        &grouped.widths,
        &grouped.class_of,
    );
    let (frac, configs) = strip_packing::release::colgen::solve_fractional_with_configs(&data);
    assert!(!configs.is_empty());
    assert!(frac.total_height > 0.0);
    // occurrences bounded per Lemma 3.3
    assert!(frac.occurrences() <= (data.widths.len() + 1) * (data.r() + 1));
}

#[test]
fn online_shelf_monotone_under_load() {
    // More tasks with the same arrival span => taller online packing.
    let p = strip_packing::gen::release::ReleaseParams {
        k: 4,
        column_widths: true,
        h: (0.2, 1.0),
    };
    let mut heights = Vec::new();
    for &n in &[20usize, 60, 180] {
        let mut rng = StdRng::seed_from_u64(205);
        let inst = strip_packing::gen::release::staircase(&mut rng, n, 10.0, p);
        let out = strip_packing::release::online::simulate(
            &inst,
            strip_packing::release::online::OnlinePolicy::Shelf { r: 0.622 },
        );
        strip_packing::core::validate::assert_valid(&inst, &out.placement);
        heights.push(out.makespan);
    }
    assert!(heights[0] <= heights[1] && heights[1] <= heights[2]);
}
