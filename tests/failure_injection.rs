//! Failure injection: corrupted placements, hostile schedules and
//! malformed inputs must be *rejected* by the validators — silence on
//! bad data would invalidate every measured result.

use rand::{rngs::StdRng, Rng, SeedableRng};
use strip_packing::core::error::ValidationError;
use strip_packing::dag::PrecInstance;
use strip_packing::pack::Packer;

/// Take valid placements and corrupt one coordinate; the validator must
/// notice overlap/strip violations (or the mutation must be harmless, in
/// which case validity must be preserved — never a panic).
#[test]
fn corrupted_placements_are_caught_or_harmless() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut caught = 0;
    let mut trials = 0;
    for _ in 0..40 {
        let n = rng.gen_range(2..30);
        let inst = strip_packing::gen::rects::uniform(&mut rng, n, (0.1, 0.9), (0.1, 1.0));
        let prec = PrecInstance::unconstrained(inst);
        let mut pl = strip_packing::precedence::dc(&prec, &Packer::Nfdh);
        prec.assert_valid(&pl);
        // corrupt: shove a random rectangle into another's position
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let pb = pl.pos(b);
        pl.set(a, pb.x, pb.y);
        trials += 1;
        match prec.validate(&pl) {
            Err(_) => caught += 1,
            Ok(()) => {
                // a == b or genuinely still valid; re-assert to be sure
                prec.assert_valid(&pl);
            }
        }
    }
    assert!(
        caught * 2 > trials,
        "validator caught only {caught}/{trials} corruptions"
    );
}

#[test]
fn precedence_violations_are_reported_with_the_edge() {
    let inst = strip_packing::core::Instance::from_dims(&[(0.4, 1.0), (0.4, 1.0)]).unwrap();
    let dag = strip_packing::dag::Dag::new(2, &[(0, 1)]).unwrap();
    let prec = PrecInstance::new(inst, dag);
    let pl = strip_packing::core::Placement::from_xy(&[(0.0, 0.0), (0.5, 0.0)]);
    match prec.validate(&pl) {
        Err(ValidationError::PrecedenceViolated {
            pred: 0, succ: 1, ..
        }) => {}
        other => panic!("expected precedence violation, got {other:?}"),
    }
}

#[test]
fn schedule_validator_rejects_column_and_time_conflicts() {
    use strip_packing::fpga::{Device, Schedule, ScheduledTask, Task, TaskGraph};
    let g = TaskGraph::independent(
        Device::new(4),
        vec![Task::new(0, 3, 1.0), Task::new(1, 3, 1.0)],
    );
    // both tasks need 3 of 4 columns at the same time -> impossible
    let s = Schedule {
        entries: vec![
            ScheduledTask {
                id: 0,
                start_col: 0,
                start_time: 0.0,
            },
            ScheduledTask {
                id: 1,
                start_col: 1,
                start_time: 0.5,
            },
        ],
    };
    assert!(s.validate(&g).is_err());
    // sequential is fine
    let s2 = Schedule {
        entries: vec![
            ScheduledTask {
                id: 0,
                start_col: 0,
                start_time: 0.0,
            },
            ScheduledTask {
                id: 1,
                start_col: 1,
                start_time: 1.0,
            },
        ],
    };
    assert!(s2.validate(&g).is_ok());
}

#[test]
fn textio_rejects_garbage_without_panicking() {
    for bad in [
        "",
        "garbage",
        "spp v1\nitem 0 nan 1 0",
        "spp v1\nitem 0 0.5 1 0\nedge 0 9",
        "spp v1\nitem 1 0.5 1 0", // ids must be 0..n
        "spp v2\nitem 0 0.5 1 0",
    ] {
        assert!(
            strip_packing::gen::textio::from_text(bad).is_err(),
            "accepted garbage: {bad:?}"
        );
    }
}

#[test]
fn lp_pathologies_report_clean_statuses() {
    use strip_packing::lp::{solve, Cmp, Problem, Status};
    // contradictory equalities
    let mut p = Problem::new();
    let x = p.add_var(0.0);
    p.add_constraint(&[(x, 1.0)], Cmp::Eq, 1.0);
    p.add_constraint(&[(x, 1.0)], Cmp::Eq, 2.0);
    assert_eq!(solve(&p).status, Status::Infeasible);
    // unbounded improvement direction
    let mut q = Problem::new();
    let y = q.add_var(-1.0);
    let z = q.add_var(0.0);
    q.add_constraint(&[(y, 1.0), (z, -1.0)], Cmp::Le, 5.0);
    assert_eq!(solve(&q).status, Status::Unbounded);
}

#[test]
fn exact_solver_budget_degrades_gracefully() {
    let mut rng = StdRng::seed_from_u64(8);
    let dims: Vec<(f64, f64)> = (0..9)
        .map(|_| (rng.gen_range(0.2..0.6), rng.gen_range(0.2..0.9)))
        .collect();
    let inst = strip_packing::core::Instance::from_dims(&dims).unwrap();
    let prec = PrecInstance::unconstrained(inst);
    let res = strip_packing::exact::exact_strip(
        &prec,
        strip_packing::exact::ExactConfig { max_nodes: 10 },
    );
    assert!(!res.proven_optimal);
    // the incumbent is still a valid packing
    prec.assert_valid(&res.placement.unwrap());
}
