//! Two-process round trip of the `spp serve` front end — the acceptance
//! criterion of the service work, asserted as a test rather than only a
//! CI smoke job:
//!
//! * `spp serve --cache-dir D` in one process plus
//!   `spp batch --cache-url http://127.0.0.1:<port>` in another produces
//!   stdout **byte-identical** to a local `--cache-dir` execution of the
//!   same workload;
//! * a warm rerun through the HTTP cache performs **zero** solver
//!   invocations (every cell a hit, nothing written).

use std::io::{BufRead as _, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn spp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spp"))
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spp_serve_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A real `spp serve` child process. The server prints
/// `listening on http://host:port` as its first stdout line (port 0 =
/// kernel-chosen), which is the only startup synchronization needed.
struct ServerProc {
    child: Child,
    url: String,
}

impl ServerProc {
    fn start(cache_dir: &Path) -> ServerProc {
        let mut child = spp()
            .args([
                "serve",
                "--cache-dir",
                cache_dir.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "4",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn spp serve");
        let mut line = String::new();
        BufReader::new(child.stdout.take().expect("server stdout"))
            .read_line(&mut line)
            .expect("read server banner");
        let url = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .to_string();
        ServerProc { child, url }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct RunOutput {
    stdout: String,
    stderr: String,
}

fn run_batch(suite: &Path, cache_flag: &str, cache_value: &str) -> RunOutput {
    let out = spp()
        .args([
            "batch",
            "--input-dir",
            suite.to_str().unwrap(),
            "--algos",
            "nfdh,ffdh,greedy",
            "--cells",
            cache_flag,
            cache_value,
        ])
        .output()
        .expect("spawn spp batch");
    assert!(
        out.status.success(),
        "batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    RunOutput {
        stdout: String::from_utf8(out.stdout).unwrap(),
        stderr: String::from_utf8(out.stderr).unwrap(),
    }
}

#[test]
fn two_process_round_trip_is_byte_identical_and_warm_runs_solve_nothing() {
    let suite = tmp("suite");
    strip_packing::gen::suite::write_suite(&suite, 17, 12, 8).unwrap();
    let server_cache = tmp("server_cache");
    let local_cache = tmp("local_cache");

    // Reference: the same workload through a local --cache-dir.
    let local = run_batch(&suite, "--cache-dir", local_cache.to_str().unwrap());

    let server = ServerProc::start(&server_cache);
    let cold = run_batch(&suite, "--cache-url", &server.url);
    assert_eq!(
        cold.stdout, local.stdout,
        "HTTP-cached run diverged from local --cache-dir run"
    );
    assert!(
        cold.stderr.contains("cache: 0 hits, 24 misses, 24 written"),
        "cold stderr: {}",
        cold.stderr
    );

    // Warm rerun: byte-identical output, zero solver invocations — every
    // cell is an HTTP hit, nothing is recomputed or rewritten.
    let warm = run_batch(&suite, "--cache-url", &server.url);
    assert_eq!(warm.stdout, cold.stdout);
    assert!(
        warm.stderr.contains("cache: 24 hits, 0 misses, 0 written"),
        "warm stderr: {}",
        warm.stderr
    );

    // The server's directory is interchangeable with a local cache: a
    // third process resumes from it directly, also solving nothing.
    let resumed = run_batch(&suite, "--cache-dir", server_cache.to_str().unwrap());
    assert_eq!(resumed.stdout, cold.stdout);
    assert!(
        resumed
            .stderr
            .contains("cache: 24 hits, 0 misses, 0 written"),
        "resume stderr: {}",
        resumed.stderr
    );

    // /stats, straight off the live server: 24 GET misses (cold), 24
    // PUTs, 24 GET hits (warm), zero error-class responses.
    let authority = server.url.strip_prefix("http://").unwrap();
    let stats = strip_packing::serve::http::roundtrip(authority, "GET", "/stats", "").unwrap();
    assert_eq!(stats.status, 200);
    for needle in [
        "\"cache_get_hits\": 24",
        "\"cache_get_misses\": 24",
        "\"cache_puts\": 24",
        "\"entries\": 24",
        "\"errors\": 0",
        "\"corrupt\": 0",
    ] {
        assert!(
            stats.body.contains(needle),
            "missing {needle}: {}",
            stats.body
        );
    }
    // And a malformed request is a structured 400, not a hang or a 500.
    let bad =
        strip_packing::serve::http::roundtrip(authority, "POST", "/solve?solver=nfdh", "garbage")
            .unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("spp-serve-error"), "{}", bad.body);

    drop(server);
    for d in [suite, server_cache, local_cache] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn conflicting_cache_flags_are_rejected() {
    let suite = tmp("flags_suite");
    strip_packing::gen::suite::write_suite(&suite, 1, 8, 2).unwrap();
    let out = spp()
        .args([
            "batch",
            "--input-dir",
            suite.to_str().unwrap(),
            "--cache-dir",
            "/tmp/x",
            "--cache-url",
            "http://127.0.0.1:1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");

    // A syntactically bad URL is refused up front, not degraded to
    // an uncached run.
    let out = spp()
        .args([
            "batch",
            "--input-dir",
            suite.to_str().unwrap(),
            "--cache-url",
            "ftp://127.0.0.1:1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&suite);
}
