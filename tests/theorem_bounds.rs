//! The paper's quantitative claims, verified as integration-level
//! invariants on randomized suites (larger and more adversarial than the
//! unit-test versions inside each crate).

use rand::{rngs::StdRng, Rng, SeedableRng};
use strip_packing::dag::PrecInstance;
use strip_packing::pack::Packer;

/// Theorem 2.3: `DC(S) ≤ log₂(n+1)·F(S) + 2·AREA(S)` on every family.
#[test]
fn theorem_2_3_bound_across_families() {
    let mut rng = StdRng::seed_from_u64(100);
    for family in strip_packing::gen::rects::DagFamily::ALL {
        for &n in &[1usize, 2, 9, 33, 120] {
            let inst = strip_packing::gen::rects::uniform(&mut rng, n, (0.02, 1.0), (0.02, 1.5));
            let dag = family.build(&mut rng, n);
            let prec = PrecInstance::new(inst, dag);
            let pl = strip_packing::precedence::dc(&prec, &Packer::Nfdh);
            prec.assert_valid(&pl);
            assert!(
                pl.height(&prec.inst) <= strip_packing::precedence::dc_bound(&prec) + 1e-9,
                "family {} n {n}",
                family.name()
            );
        }
    }
}

/// Lemma 2.4: the Fig. 1 family has simple bounds → 1 but any measured
/// packing ≥ k/2 − o(1).
#[test]
fn lemma_2_4_gap_family() {
    for k in 2..=9 {
        let fam = strip_packing::gen::adversarial::fig1_lower_bound_gap(k, 1e-7);
        let prec = &fam.prec;
        assert!(prec.area_lb() < 1.01);
        assert!(prec.critical_lb() < 1.01);
        for pl in [
            strip_packing::precedence::dc(prec, &Packer::Nfdh),
            strip_packing::precedence::greedy_skyline(prec),
        ] {
            prec.assert_valid(&pl);
            let h = pl.height(&prec.inst);
            assert!(
                h + 1e-6 >= fam.opt_lower_bound(),
                "k={k}: packing {h} below the Lemma 2.4 bound {}",
                fam.opt_lower_bound()
            );
        }
    }
}

/// Theorem 2.6: shelf algorithm `F` is an absolute 3-approximation
/// (checked against exact optima).
#[test]
fn theorem_2_6_absolute_three() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..25 {
        let n = rng.gen_range(1..14);
        let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
        let p = rng.gen_range(0.0..0.5);
        let dag = strip_packing::dag::gen::random_order(&mut rng, n, p);
        let dims: Vec<(f64, f64)> = sizes.iter().map(|&w| (w, 1.0)).collect();
        let prec = PrecInstance::new(
            strip_packing::core::Instance::from_dims(&dims).unwrap(),
            dag.clone(),
        );
        let shelf = strip_packing::precedence::shelf_next_fit(&prec);
        prec.assert_valid(&shelf.placement);
        let opt = strip_packing::exact::exact_bins(&sizes, &dag);
        assert!(
            shelf.shelves.len() <= 3 * opt,
            "{} shelves > 3·OPT = {}",
            shelf.shelves.len(),
            3 * opt
        );
    }
}

/// Lemma 2.7: the Fig. 2 family realizes OPT = 3(max F − 1) = 3·AREA − 3nε.
#[test]
fn lemma_2_7_tightness_family() {
    for k in [1usize, 3, 7, 15] {
        let eps = 1e-5;
        let fam = strip_packing::gen::adversarial::fig2_ratio3_tightness(k, eps);
        // closed forms
        assert!((fam.opt() - 3.0 * (fam.max_f() - 1.0)).abs() < 1e-9);
        assert!((fam.opt() - (3.0 * fam.area() - 3.0 * fam.n() as f64 * eps)).abs() < 1e-6);
        // exact solver confirms OPT for small k
        if fam.n() <= 15 {
            let opt = strip_packing::exact::exact_uniform_height(&fam.prec);
            assert!((opt - fam.opt()).abs() < 1e-9, "k={k}");
        }
    }
}

/// Lemmas 3.1–3.3 composed: OPT_f(P(R,W)) ∈ [OPT_f(P), (1+ε)·OPT_f(P)].
#[test]
fn lemmas_3_1_to_3_3_sandwich() {
    let mut rng = StdRng::seed_from_u64(102);
    let params = strip_packing::gen::release::ReleaseParams {
        k: 2,
        column_widths: false,
        h: (0.1, 1.0),
    };
    for &eps in &[1.5, 0.9] {
        let inst = strip_packing::gen::release::bursty(&mut rng, 12, 3, 2.0, 0.3, params);
        let res = strip_packing::release::aptas(
            &inst,
            strip_packing::release::AptasConfig { epsilon: eps, k: 2 },
        );
        let raw = strip_packing::release::colgen::opt_f(&inst);
        assert!(res.opt_f_grouped + 1e-6 >= raw, "grouping shrank OPT_f");
        assert!(
            res.opt_f_grouped <= (1.0 + eps) * raw + 1e-6,
            "eps={eps}: {} > (1+eps)·{raw}",
            res.opt_f_grouped
        );
    }
}

/// Theorem 3.5 end-to-end: height ≤ (1+ε)·OPT_f(P) + (W+1)(R+1).
#[test]
fn theorem_3_5_end_to_end() {
    let mut rng = StdRng::seed_from_u64(103);
    let params = strip_packing::gen::release::ReleaseParams {
        k: 2,
        column_widths: true,
        h: (0.1, 1.0),
    };
    for &n in &[10usize, 60, 150] {
        let inst = strip_packing::gen::release::poisson_arrivals(&mut rng, n, 0.2, params);
        let cfg = strip_packing::release::AptasConfig { epsilon: 1.0, k: 2 };
        let res = strip_packing::release::aptas(&inst, cfg);
        assert_eq!(res.leftovers, 0);
        strip_packing::core::validate::assert_valid(&inst, &res.placement);
        let raw = strip_packing::release::colgen::opt_f(&inst);
        assert!(
            res.height <= (1.0 + cfg.epsilon) * raw + cfg.additive_term() + 1e-6,
            "n={n}: {} > (1+ε)·{raw} + {}",
            res.height,
            cfg.additive_term()
        );
    }
}

/// The A-bound contract DC relies on, at integration scale.
#[test]
fn nfdh_a_bound_at_scale() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..10 {
        let n = rng.gen_range(1..2000);
        let inst = strip_packing::gen::rects::uniform(&mut rng, n, (0.01, 1.0), (0.01, 2.0));
        let pl = strip_packing::pack::nfdh(&inst);
        strip_packing::core::validate::assert_valid(&inst, &pl);
        assert!(
            pl.height(&inst) <= 2.0 * inst.total_area() + inst.max_height() + 1e-9,
            "n={n}"
        );
    }
}
